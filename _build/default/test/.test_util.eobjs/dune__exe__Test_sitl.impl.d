test/test_sitl.ml: Alcotest Array Avis_core Avis_firmware Avis_geo Avis_hinj Avis_physics Avis_sensors Avis_sitl List Sim Trace Vec3 Workload
