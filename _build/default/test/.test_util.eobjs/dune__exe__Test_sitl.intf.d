test/test_sitl.mli:
