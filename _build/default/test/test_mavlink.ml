(* Tests for avis_mavlink: checksum, payload codec, framing (including
   resynchronisation over garbage), the in-memory link, and the GCS-side
   mission-upload transaction. *)

open Avis_mavlink

(* Crc *)

let test_crc_known_properties () =
  (* X25 over the empty string is the seed. *)
  Alcotest.(check int) "empty" 0xFFFF (Crc.of_string "");
  (* Deterministic and byte-order sensitive. *)
  Alcotest.(check int) "stable" (Crc.of_string "hello") (Crc.of_string "hello");
  Alcotest.(check bool) "order matters" true
    (Crc.of_string "ab" <> Crc.of_string "ba")

let test_crc_incremental () =
  let whole = Crc.of_string "avis-checker" in
  let acc = Crc.accumulate_string (Crc.init ()) "avis-" in
  let acc = Crc.accumulate_string acc "checker" in
  Alcotest.(check int) "incremental equals one-shot" whole (Crc.value acc)

(* Buf *)

let test_buf_roundtrip () =
  let w = Buf.writer () in
  Buf.put_u8 w 0xAB;
  Buf.put_u16 w 0xBEEF;
  Buf.put_i32 w (-123456);
  Buf.put_f32 w 3.25;
  Buf.put_string w ~len:8 "hey";
  let r = Buf.reader (Buf.contents w) in
  Alcotest.(check int) "u8" 0xAB (Buf.get_u8 r);
  Alcotest.(check int) "u16" 0xBEEF (Buf.get_u16 r);
  Alcotest.(check int) "i32" (-123456) (Buf.get_i32 r);
  Alcotest.(check (float 1e-9)) "f32" 3.25 (Buf.get_f32 r);
  Alcotest.(check string) "string" "hey" (Buf.get_string r ~len:8);
  Alcotest.(check int) "drained" 0 (Buf.remaining r)

let test_buf_truncated () =
  let r = Buf.reader "\x01" in
  ignore (Buf.get_u8 r);
  Alcotest.check_raises "truncated" Buf.Truncated (fun () -> ignore (Buf.get_u8 r))

let prop_buf_i32_roundtrip =
  QCheck.Test.make ~name:"i32 roundtrip" ~count:500
    (QCheck.int_range (-0x40000000) 0x3FFFFFFF)
    (fun v ->
      let w = Buf.writer () in
      Buf.put_i32 w v;
      Buf.get_i32 (Buf.reader (Buf.contents w)) = v)

let prop_buf_f32_roundtrip =
  QCheck.Test.make ~name:"f32 roundtrip (single precision)" ~count:500
    (QCheck.float_range (-1e6) 1e6)
    (fun v ->
      let w = Buf.writer () in
      Buf.put_f32 w v;
      let back = Buf.get_f32 (Buf.reader (Buf.contents w)) in
      Float.abs (back -. v) <= Float.abs v *. 1e-6 +. 1e-6)

(* Messages + frames *)

let sample_messages =
  [
    Msg.Heartbeat { custom_mode = 101; armed = true; system_status = 4 };
    Msg.Sys_status { voltage_mv = 12400; battery_remaining = 87 };
    Msg.Set_mode { custom_mode = 3 };
    Msg.Mission_count { count = 6 };
    Msg.Mission_request { seq = 2 };
    Msg.Mission_item
      { seq = 1; command = Msg.cmd_waypoint; param1 = 0.0; x = 47.39; y = 8.54; z = 20.0 };
    Msg.Mission_ack { accepted = true };
    Msg.Mission_current { seq = 3 };
    Msg.Command_long
      { command = Msg.cmd_takeoff; param1 = 20.0; param2 = 0.0; param3 = 1.5; param4 = -2.0 };
    Msg.Command_ack { command = Msg.cmd_takeoff; accepted = false };
    Msg.Global_position
      { time_boot_ms = 123456; lat_e7 = 473977420; lon_e7 = 85455940;
        relative_alt_mm = 20345; vx_cm = -120; vy_cm = 55; vz_cm = 0;
        heading_cdeg = 27000 };
    Msg.Statustext { severity = Msg.Critical; text = "failsafe: battery" };
    Msg.Param_request_list;
    Msg.Param_value { name = "WPNAV_SPEED"; value = 4.5; index = 0; count = 6 };
    Msg.Param_set { name = "RTL_ALT"; value = 25.0 };
  ]

let roundtrip msg =
  let encoded = Frame.encode ~seq:7 ~sysid:1 ~compid:1 msg in
  let decoder = Frame.decoder () in
  match Frame.feed decoder encoded with
  | [ frame ] -> frame.Frame.message
  | _ -> Alcotest.fail "expected exactly one frame"

let test_frame_roundtrip_all () =
  List.iter
    (fun msg ->
      let back = roundtrip msg in
      Alcotest.(check string) "same description" (Msg.describe msg) (Msg.describe back);
      Alcotest.(check bool) "same payload" true
        (Msg.encode_payload msg = Msg.encode_payload back))
    sample_messages

let test_frame_metadata () =
  let encoded = Frame.encode ~seq:42 ~sysid:9 ~compid:3 (Msg.Mission_count { count = 1 }) in
  let decoder = Frame.decoder () in
  match Frame.feed decoder encoded with
  | [ frame ] ->
    Alcotest.(check int) "seq" 42 frame.Frame.seq;
    Alcotest.(check int) "sysid" 9 frame.Frame.sysid;
    Alcotest.(check int) "compid" 3 frame.Frame.compid
  | _ -> Alcotest.fail "one frame expected"

let test_decoder_resync_over_garbage () =
  let encoded = Frame.encode ~seq:1 ~sysid:1 ~compid:1 (Msg.Mission_request { seq = 4 }) in
  let decoder = Frame.decoder () in
  let frames = Frame.feed decoder ("garbage!!" ^ encoded ^ "trailing") in
  Alcotest.(check int) "one frame recovered" 1 (List.length frames)

let test_decoder_rejects_bad_crc () =
  let encoded = Frame.encode ~seq:1 ~sysid:1 ~compid:1 (Msg.Mission_request { seq = 4 }) in
  let corrupted = Bytes.of_string encoded in
  let last = Bytes.length corrupted - 1 in
  Bytes.set corrupted last (Char.chr (Char.code (Bytes.get corrupted last) lxor 0xFF));
  let decoder = Frame.decoder () in
  let frames = Frame.feed decoder (Bytes.to_string corrupted) in
  Alcotest.(check int) "dropped" 0 (List.length frames);
  Alcotest.(check bool) "counted" true (Frame.dropped decoder >= 1)

let test_decoder_handles_partial_feeds () =
  let encoded = Frame.encode ~seq:1 ~sysid:1 ~compid:1 (Msg.Set_mode { custom_mode = 6 }) in
  let decoder = Frame.decoder () in
  let mid = String.length encoded / 2 in
  let first = Frame.feed decoder (String.sub encoded 0 mid) in
  Alcotest.(check int) "nothing yet" 0 (List.length first);
  let rest = Frame.feed decoder (String.sub encoded mid (String.length encoded - mid)) in
  Alcotest.(check int) "completed" 1 (List.length rest)

let prop_frames_concatenate =
  QCheck.Test.make ~name:"concatenated frames all decode" ~count:100
    (QCheck.int_range 1 8)
    (fun n ->
      let msgs = List.init n (fun i -> Msg.Mission_request { seq = i }) in
      let stream =
        String.concat ""
          (List.mapi (fun i m -> Frame.encode ~seq:i ~sysid:1 ~compid:1 m) msgs)
      in
      let decoder = Frame.decoder () in
      List.length (Frame.feed decoder stream) = n)

(* Link *)

let test_link_delivery () =
  let link = Link.create () in
  Link.send link Link.Gcs_end "hello";
  Alcotest.(check string) "not yet delivered" "" (Link.receive link Link.Vehicle_end);
  Link.step link;
  Alcotest.(check string) "delivered next step" "hello" (Link.receive link Link.Vehicle_end);
  Alcotest.(check string) "only once" "" (Link.receive link Link.Vehicle_end)

let test_link_direction () =
  let link = Link.create () in
  Link.send link Link.Gcs_end "to-vehicle";
  Link.step link;
  Alcotest.(check string) "wrong end empty" "" (Link.receive link Link.Gcs_end);
  Alcotest.(check string) "right end" "to-vehicle" (Link.receive link Link.Vehicle_end)

let test_link_jitter_preserves_order () =
  let rng = Avis_util.Rng.create 3 in
  let link = Link.create ~jitter:(rng, 3) () in
  for i = 0 to 9 do
    Link.send link Link.Gcs_end (Printf.sprintf "%d;" i)
  done;
  for _ = 1 to 10 do
    Link.step link
  done;
  let received = Link.receive link Link.Vehicle_end in
  (* Order within the final drain must be the send order. *)
  let tokens = String.split_on_char ';' received |> List.filter (( <> ) "") in
  let sorted = List.sort compare (List.map int_of_string tokens) in
  Alcotest.(check (list int)) "all arrived in order" sorted
    (List.map int_of_string tokens)

(* GCS transaction *)

let vehicle_responder link =
  (* A scripted vehicle end: answers MISSION_COUNT with sequential
     MISSION_REQUESTs and a final ACK. *)
  let decoder = Frame.decoder () in
  let expected = ref 0 in
  let total = ref 0 in
  let send msg = Link.send link Link.Vehicle_end (Frame.encode ~seq:0 ~sysid:1 ~compid:1 msg) in
  fun () ->
    List.iter
      (fun frame ->
        match frame.Frame.message with
        | Msg.Mission_count { count } ->
          total := count;
          expected := 0;
          send (Msg.Mission_request { seq = 0 })
        | Msg.Mission_item { seq; _ } when seq = !expected ->
          incr expected;
          if !expected >= !total then send (Msg.Mission_ack { accepted = true })
          else send (Msg.Mission_request { seq = !expected })
        | _ -> ())
      (Frame.feed decoder (Link.receive link Link.Vehicle_end))

let test_gcs_mission_upload () =
  let link = Link.create () in
  let gcs = Gcs.create link in
  let responder = vehicle_responder link in
  let items =
    List.init 4 (fun seq ->
        { Msg.seq; command = Msg.cmd_waypoint; param1 = 0.0; x = 0.0; y = 0.0; z = 10.0 })
  in
  Gcs.start_mission_upload gcs items;
  let steps = ref 0 in
  while Gcs.upload_state gcs = Gcs.Upload_in_progress && !steps < 100 do
    Link.step link;
    responder ();
    ignore (Gcs.poll gcs);
    incr steps
  done;
  Alcotest.(check bool) "upload completed" true (Gcs.upload_state gcs = Gcs.Upload_done)

let test_gcs_upload_busy () =
  let link = Link.create () in
  let gcs = Gcs.create link in
  Gcs.start_mission_upload gcs
    [ { Msg.seq = 0; command = Msg.cmd_takeoff; param1 = 0.0; x = 0.0; y = 0.0; z = 5.0 } ];
  Alcotest.check_raises "busy"
    (Invalid_argument "Gcs.start_mission_upload: upload already in progress")
    (fun () -> Gcs.start_mission_upload gcs [])

let test_gcs_telemetry_cache () =
  let link = Link.create () in
  let gcs = Gcs.create link in
  let send msg = Link.send link Link.Vehicle_end (Frame.encode ~seq:0 ~sysid:1 ~compid:1 msg) in
  send (Msg.Heartbeat { custom_mode = 5; armed = true; system_status = 4 });
  send
    (Msg.Global_position
       { time_boot_ms = 1000; lat_e7 = 473977420; lon_e7 = 85455940;
         relative_alt_mm = 12500; vx_cm = 100; vy_cm = 0; vz_cm = -50;
         heading_cdeg = 9000 });
  Link.step link;
  ignore (Gcs.poll gcs);
  Alcotest.(check bool) "armed" true (Gcs.armed gcs);
  Alcotest.(check bool) "mode" true (Gcs.vehicle_mode gcs = Some 5);
  Alcotest.(check (float 1e-6)) "alt" 12.5 (Gcs.relative_alt gcs);
  Alcotest.(check (float 1e-4)) "heading" 90.0 (Gcs.heading_deg gcs)

let test_gcs_command_ack () =
  let link = Link.create () in
  let gcs = Gcs.create link in
  Gcs.send_command gcs ~command:400 ~param1:1.0 ();
  Alcotest.(check bool) "no ack yet" true (Gcs.command_ack gcs ~command:400 = None);
  Link.send link Link.Vehicle_end
    (Frame.encode ~seq:0 ~sysid:1 ~compid:1 (Msg.Command_ack { command = 400; accepted = true }));
  Link.step link;
  ignore (Gcs.poll gcs);
  Alcotest.(check bool) "acked" true (Gcs.command_ack gcs ~command:400 = Some true)

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "avis_mavlink"
    [
      ( "crc",
        [
          Alcotest.test_case "properties" `Quick test_crc_known_properties;
          Alcotest.test_case "incremental" `Quick test_crc_incremental;
        ] );
      ( "buf",
        [
          Alcotest.test_case "roundtrip" `Quick test_buf_roundtrip;
          Alcotest.test_case "truncated" `Quick test_buf_truncated;
          q prop_buf_i32_roundtrip;
          q prop_buf_f32_roundtrip;
        ] );
      ( "frame",
        [
          Alcotest.test_case "roundtrip all messages" `Quick test_frame_roundtrip_all;
          Alcotest.test_case "metadata" `Quick test_frame_metadata;
          Alcotest.test_case "resync over garbage" `Quick test_decoder_resync_over_garbage;
          Alcotest.test_case "bad crc dropped" `Quick test_decoder_rejects_bad_crc;
          Alcotest.test_case "partial feeds" `Quick test_decoder_handles_partial_feeds;
          q prop_frames_concatenate;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivery" `Quick test_link_delivery;
          Alcotest.test_case "direction" `Quick test_link_direction;
          Alcotest.test_case "jitter keeps order" `Quick test_link_jitter_preserves_order;
        ] );
      ( "gcs",
        [
          Alcotest.test_case "mission upload" `Quick test_gcs_mission_upload;
          Alcotest.test_case "upload busy" `Quick test_gcs_upload_busy;
          Alcotest.test_case "telemetry cache" `Quick test_gcs_telemetry_cache;
          Alcotest.test_case "command ack" `Quick test_gcs_command_ack;
        ] );
    ]
