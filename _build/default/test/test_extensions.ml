(* Tests for the extensions beyond the paper's core: the JSON emitter and
   artefact export, the workload builders, the PARAM protocol, sensor
   degradations (the future-work fault models), and the hexacopter
   airframe. *)

open Avis_util
open Avis_sensors
open Avis_firmware
open Avis_sitl
open Avis_core

(* Json *)

let test_json_scalars () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "bool" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "int" "42" (Json.to_string (Json.int 42));
  Alcotest.(check string) "float" "1.5" (Json.to_string (Json.Number 1.5));
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Number Float.nan))

let test_json_escaping () =
  Alcotest.(check string) "escapes" "\"a\\\"b\\\\c\\nd\""
    (Json.to_string (Json.String "a\"b\\c\nd"))

let test_json_structures () =
  let v =
    Json.Assoc [ ("xs", Json.List [ Json.int 1; Json.int 2 ]); ("ok", Json.Bool false) ]
  in
  Alcotest.(check string) "compact" "{\"xs\":[1,2],\"ok\":false}" (Json.to_string v);
  Alcotest.(check bool) "pretty contains newlines" true
    (String.contains (Json.to_string_pretty v) '\n')

(* Export *)

let run_quickstart ?(plan = []) ?(degradations = []) () =
  let config =
    { (Sim.default_config Policy.apm) with Sim.max_duration = 75.0 }
  in
  let sim = Sim.create ~plan ~degradations config in
  let passed = Workload.execute Workload.quickstart sim in
  Sim.outcome sim ~workload_passed:passed

let test_export_outcome_json () =
  let o = run_quickstart () in
  let json = Json.to_string (Export.outcome_to_json o) in
  Alcotest.(check bool) "mentions transitions" true
    (String.length json > 200);
  (* A rough well-formedness check: brackets balance. *)
  let count c = String.fold_left (fun acc x -> if x = c then acc + 1 else acc) 0 json in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced brackets" (count '[') (count ']')

let test_export_mode_graph_dot () =
  let graph = Mode_graph.build ~transitions:[ [ ("A", "B"); ("B", "C") ] ] in
  let dot = Export.mode_graph_to_dot graph in
  Alcotest.(check bool) "digraph" true (String.length dot > 10);
  Alcotest.(check bool) "edge present" true
    (let needle = "\"A\" -> \"B\"" in
     let rec contains i =
       i + String.length needle <= String.length dot
       && (String.sub dot i (String.length needle) = needle || contains (i + 1))
     in
     contains 0)

(* Workload builders *)

let test_polygon_validation () =
  Alcotest.check_raises "two sides"
    (Invalid_argument "Workload_builder: a polygon needs >= 3 sides") (fun () ->
      ignore (Workload_builder.auto_polygon ~sides:2 ~radius:10.0 ~alt:15.0 ()));
  Alcotest.check_raises "bad radius"
    (Invalid_argument "Workload_builder: non-positive radius") (fun () ->
      ignore (Workload_builder.auto_polygon ~sides:3 ~radius:0.0 ~alt:15.0 ()))

let fly_workload (w : Workload.t) =
  let config =
    {
      (Sim.default_config Policy.apm) with
      Sim.max_duration = w.Workload.nominal_duration +. 60.0;
      environment = w.Workload.environment ();
    }
  in
  let sim = Sim.create config in
  let passed = Workload.execute w sim in
  (passed, Sim.outcome sim ~workload_passed:passed)

let test_auto_triangle_flies () =
  let w = Workload_builder.auto_polygon ~sides:3 ~radius:15.0 ~alt:15.0 () in
  let passed, o = fly_workload w in
  Alcotest.(check bool) "passes" true passed;
  (* Takeoff + three waypoint legs + RTL + Land + Disarmed. *)
  Alcotest.(check bool) "visits three waypoints" true
    (List.exists (fun tr -> tr.Avis_hinj.Hinj.to_mode = "Waypoint 3") o.Sim.transitions)

let test_altitude_sweep_flies () =
  let w = Workload_builder.altitude_sweep ~levels:[ 10.0; 20.0; 12.0 ] () in
  let passed, _ = fly_workload w in
  Alcotest.(check bool) "passes" true passed

let test_altitude_sweep_validation () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Workload_builder.altitude_sweep: no levels") (fun () ->
      ignore (Workload_builder.altitude_sweep ~levels:[] ()))

(* PARAM protocol *)

let test_param_registry () =
  Alcotest.(check bool) "has WPNAV_SPEED" true
    (Param_registry.find "WPNAV_SPEED" <> None);
  Alcotest.(check bool) "unknown" true (Param_registry.find "NOPE" = None);
  match Param_registry.apply_set Params.default ~name:"RTL_ALT" ~value:25.0 with
  | Some (p, v) ->
    Alcotest.(check (float 1e-9)) "accepted" 25.0 v;
    Alcotest.(check (float 1e-9)) "applied" 25.0 p.Params.rtl_altitude
  | None -> Alcotest.fail "RTL_ALT missing"

let test_param_clamping () =
  match Param_registry.apply_set Params.default ~name:"WPNAV_SPEED" ~value:99.0 with
  | Some (_, v) -> Alcotest.(check (float 1e-9)) "clamped to max" 5.0 v
  | None -> Alcotest.fail "WPNAV_SPEED missing"

let test_param_roundtrip_over_link () =
  let config = { (Sim.default_config Policy.apm) with Sim.max_duration = 30.0 } in
  let sim = Sim.create config in
  let gcs = Sim.gcs sim in
  ignore (Sim.run_until sim (fun s -> Sim.time s >= 0.5));
  Avis_mavlink.Gcs.set_param gcs ~name:"RTL_ALT" ~value:30.0;
  ignore
    (Sim.run_until sim (fun s ->
         ignore (Avis_mavlink.Gcs.poll (Sim.gcs s));
         Avis_mavlink.Gcs.param (Sim.gcs s) "RTL_ALT" <> None
         || Sim.time s > 5.0));
  Alcotest.(check (option (float 1e-4))) "echoed" (Some 30.0)
    (Avis_mavlink.Gcs.param gcs "RTL_ALT");
  (* And the whole table. *)
  Avis_mavlink.Gcs.request_param_list gcs;
  ignore
    (Sim.run_until sim (fun s ->
         ignore (Avis_mavlink.Gcs.poll (Sim.gcs s));
         List.length (Avis_mavlink.Gcs.params (Sim.gcs s)) >= Param_registry.count
         || Sim.time s > 10.0));
  Alcotest.(check int) "full table" Param_registry.count
    (List.length (Avis_mavlink.Gcs.params gcs))

(* Degradations *)

let test_degradation_decision_layer () =
  let gps0 = { Sensor.kind = Sensor.Gps; index = 0 } in
  let h =
    Avis_hinj.Hinj.create
      ~degradations:
        [ { Avis_hinj.Hinj.target = gps0; from_time = 5.0; kind = Avis_hinj.Hinj.Stuck_at_last } ]
      ()
  in
  Alcotest.(check bool) "inactive before" true
    (Avis_hinj.Hinj.degradation_of h ~time:1.0 gps0 = None);
  Alcotest.(check bool) "active after" true
    (Avis_hinj.Hinj.degradation_of h ~time:6.0 gps0 <> None);
  Alcotest.(check bool) "still reads healthy" true
    (Avis_hinj.Hinj.sensor_read h ~time:6.0 gps0 = Avis_hinj.Hinj.Healthy)

let test_degraded_flight_stuck_baro () =
  (* A stuck barometer mid-climb behaves like the frozen-altitude flaw:
     the vehicle keeps climbing past its target. *)
  let baro index = { Sensor.kind = Sensor.Barometer; index } in
  let degradations =
    List.init 2 (fun index ->
        { Avis_hinj.Hinj.target = baro index; from_time = 4.0;
          kind = Avis_hinj.Hinj.Stuck_at_last })
  in
  let o = run_quickstart ~degradations () in
  Alcotest.(check bool) "mission does not pass" false o.Sim.workload_passed;
  let max_alt =
    Array.fold_left
      (fun acc s -> Float.max acc s.Trace.position.Avis_geo.Vec3.z)
      0.0
      (Trace.samples o.Sim.trace)
  in
  Alcotest.(check bool) "overshoots well past 20 m" true (max_alt > 30.0)

let test_degraded_flight_mild_noise_is_harmless () =
  let gps index = { Sensor.kind = Sensor.Gps; index } in
  let degradations =
    List.init 2 (fun index ->
        { Avis_hinj.Hinj.target = gps index; from_time = 4.0;
          kind = Avis_hinj.Hinj.Extra_noise 0.2 })
  in
  let o = run_quickstart ~degradations () in
  Alcotest.(check bool) "mission still passes" true o.Sim.workload_passed

(* Hexacopter *)

let test_hexa_layout () =
  let layout = Avis_physics.Motor.mix_layout Avis_physics.Airframe.hexa in
  Alcotest.(check int) "six motors" 6 (Array.length layout);
  let spin_sum = Array.fold_left (fun acc (_, s) -> acc +. s) 0.0 layout in
  Alcotest.(check (float 1e-9)) "balanced spins" 0.0 spin_sum

let test_airframe_lookup () =
  Alcotest.(check bool) "iris" true (Avis_physics.Airframe.by_name "3DR Iris" <> None);
  Alcotest.(check bool) "hexa" true (Avis_physics.Airframe.by_name "Hexa 550" <> None);
  Alcotest.(check bool) "unknown" true (Avis_physics.Airframe.by_name "X" = None)

let test_hexa_flies_quickstart () =
  let config =
    {
      (Sim.default_config Policy.apm) with
      Sim.max_duration = 75.0;
      airframe = Avis_physics.Airframe.hexa;
    }
  in
  let sim = Sim.create config in
  let passed = Workload.execute Workload.quickstart sim in
  Alcotest.(check bool) "hexa passes quickstart" true passed;
  Alcotest.(check bool) "no crash" true
    (not (Avis_physics.World.crashed (Sim.world sim)))

let () =
  Alcotest.run "avis_extensions"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "structures" `Quick test_json_structures;
        ] );
      ( "export",
        [
          Alcotest.test_case "outcome json" `Quick test_export_outcome_json;
          Alcotest.test_case "mode graph dot" `Quick test_export_mode_graph_dot;
        ] );
      ( "workload builders",
        [
          Alcotest.test_case "polygon validation" `Quick test_polygon_validation;
          Alcotest.test_case "auto triangle flies" `Slow test_auto_triangle_flies;
          Alcotest.test_case "altitude sweep flies" `Slow test_altitude_sweep_flies;
          Alcotest.test_case "sweep validation" `Quick test_altitude_sweep_validation;
        ] );
      ( "params",
        [
          Alcotest.test_case "registry" `Quick test_param_registry;
          Alcotest.test_case "clamping" `Quick test_param_clamping;
          Alcotest.test_case "roundtrip over link" `Quick test_param_roundtrip_over_link;
        ] );
      ( "degradations",
        [
          Alcotest.test_case "decision layer" `Quick test_degradation_decision_layer;
          Alcotest.test_case "stuck baro overshoots" `Quick test_degraded_flight_stuck_baro;
          Alcotest.test_case "mild gps noise harmless" `Quick test_degraded_flight_mild_noise_is_harmless;
        ] );
      ( "hexacopter",
        [
          Alcotest.test_case "layout" `Quick test_hexa_layout;
          Alcotest.test_case "airframe lookup" `Quick test_airframe_lookup;
          Alcotest.test_case "flies quickstart" `Quick test_hexa_flies_quickstart;
        ] );
    ]
