(* The geofenced mission: the second waypoint lies in restricted airspace,
   so the firmware must stop at the fence and return to launch. We fly it
   twice — clean, and with a GPS failure injected mid-leg — and show the
   fence is respected in both (the GPS-loss run lands in place instead of
   continuing without a position source).

   Run with: dune exec examples/fence_mission.exe *)

open Avis_core
open Avis_sitl
open Avis_sensors

let fly ~plan label =
  let w = Workload.fence_mission in
  let config =
    {
      (Sim.default_config Avis_firmware.Policy.apm) with
      Sim.max_duration = w.Workload.nominal_duration +. 60.0;
      environment = w.Workload.environment ();
    }
  in
  let sim = Sim.create ~plan config in
  let passed = Workload.execute w sim in
  let o = Sim.outcome sim ~workload_passed:passed in
  Printf.printf "%s:\n  workload %s, fence breached: %b, crash: %s\n" label
    (if passed then "passed" else "did not complete")
    o.Sim.fence_breached
    (match o.Sim.crash with
    | Some e -> Format.asprintf "%a" Avis_physics.World.pp_contact e
    | None -> "none");
  List.iter
    (fun tr ->
      Printf.printf "    %6.2f s  -> %s\n" tr.Avis_hinj.Hinj.time
        tr.Avis_hinj.Hinj.to_mode)
    o.Sim.transitions;
  print_newline ()

let () =
  fly ~plan:[] "clean fenced mission";
  let gps_failure =
    List.init 2 (fun index ->
        { Avis_hinj.Hinj.sensor = { Sensor.kind = Sensor.Gps; index }; at = 13.0 })
  in
  fly ~plan:gps_failure "fenced mission with GPS loss at t=13 s"
