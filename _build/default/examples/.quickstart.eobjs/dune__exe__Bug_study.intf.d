examples/bug_study.mli:
