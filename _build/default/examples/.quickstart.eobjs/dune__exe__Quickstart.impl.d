examples/quickstart.ml: Avis_core Avis_firmware Avis_hinj Avis_sitl List Printf Sim Workload
