examples/quickstart.mli:
