examples/bug_study.ml: Avis_bugstudy Bugstudy List Printf
