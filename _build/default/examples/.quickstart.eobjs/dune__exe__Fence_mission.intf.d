examples/fence_mission.mli:
