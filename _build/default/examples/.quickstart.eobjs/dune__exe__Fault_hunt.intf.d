examples/fault_hunt.mli:
