examples/replay_bug.mli:
