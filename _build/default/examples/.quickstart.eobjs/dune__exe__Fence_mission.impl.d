examples/fence_mission.ml: Avis_core Avis_firmware Avis_hinj Avis_physics Avis_sensors Avis_sitl Format List Printf Sensor Sim Workload
