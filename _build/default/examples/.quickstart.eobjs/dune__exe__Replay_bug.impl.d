examples/replay_bug.ml: Avis_core Avis_firmware Avis_sensors Campaign List Printf Replay Report Sabre Workload
