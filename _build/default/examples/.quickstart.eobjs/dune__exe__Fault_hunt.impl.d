examples/fault_hunt.ml: Avis_core Avis_firmware Campaign List Printf Report Sabre Workload
