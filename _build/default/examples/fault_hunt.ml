(* Hunt for sensor bugs with Avis/SABRE against the ArduPilot personality
   on the auto-box mission — a small-budget version of the paper's main
   experiment. Each finding shows the injected scenario, the violated
   invariant, and (ground truth, for the demo) which reproduced bug the
   flawed code path corresponds to.

   Run with: dune exec examples/fault_hunt.exe *)

open Avis_core

let () =
  let config =
    {
      (Campaign.default_config Avis_firmware.Policy.apm Workload.auto_box) with
      Campaign.budget_s = 1500.0;
    }
  in
  Printf.printf
    "Profiling %s on %s, then hunting with SABRE (%.0f s wall-clock budget)...\n%!"
    config.Campaign.policy.Avis_firmware.Policy.name
    config.Campaign.workload.Workload.name config.Campaign.budget_s;
  let result = Campaign.run config ~strategy:(fun ctx -> Sabre.make ctx) in
  Printf.printf "\n%d simulations, %d unsafe conditions found:\n\n"
    result.Campaign.simulations
    (Campaign.unsafe_count result);
  List.iteri
    (fun i f ->
      Printf.printf "%2d. (simulation #%d)\n    %s\n" (i + 1)
        f.Campaign.simulation_index
        (Report.describe f.Campaign.report))
    result.Campaign.findings;
  Printf.printf "\nunsafe conditions by operating mode at injection:\n";
  List.iter
    (fun (bucket, n) -> Printf.printf "  %-8s %d\n" (Report.bucket_label bucket) n)
    (Campaign.count_by_bucket result)
