(* Quickstart: the paper's Fig. 8 workload, verbatim through the workload
   framework — wait for initialisation, upload a takeoff-and-land mission,
   arm, enter the auto mission, wait for the climb and the landing.

   Run with: dune exec examples/quickstart.exe *)

open Avis_core
open Avis_sitl

let () =
  let policy = Avis_firmware.Policy.apm in
  let config =
    {
      (Sim.default_config policy) with
      Sim.max_duration = Workload.quickstart.Workload.nominal_duration +. 30.0;
    }
  in
  let sim = Sim.create config in
  Printf.printf "Flying the Fig. 8 quickstart workload on %s...\n%!"
    policy.Avis_firmware.Policy.name;
  let passed = Workload.execute Workload.quickstart sim in
  let outcome = Sim.outcome sim ~workload_passed:passed in
  Printf.printf "test %s in %.1f simulated seconds\n"
    (if passed then "PASSED" else "FAILED")
    outcome.Sim.duration;
  Printf.printf "operating-mode transitions observed through libhinj:\n";
  List.iter
    (fun tr ->
      Printf.printf "  %6.2f s  %-16s -> %s\n" tr.Avis_hinj.Hinj.time
        tr.Avis_hinj.Hinj.from_mode tr.Avis_hinj.Hinj.to_mode)
    outcome.Sim.transitions;
  Printf.printf "sensor reads intercepted by the fault injector: %d (%.0f/s)\n"
    outcome.Sim.sensor_reads
    (float_of_int outcome.Sim.sensor_reads /. outcome.Sim.duration)
