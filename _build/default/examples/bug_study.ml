(* Regenerate the §III bug-study findings and the Fig. 3 panels from the
   embedded 215-record dataset.

   Run with: dune exec examples/bug_study.exe *)

open Avis_bugstudy

let pct x = 100.0 *. x

let () =
  Printf.printf "Bug study: %d classified reports\n\n" Bugstudy.total;
  Printf.printf "root-cause shares:\n";
  List.iter
    (fun cause ->
      Printf.printf "  %-9s %4.0f%%  (of crash-causing bugs: %.0f%%)\n"
        (Bugstudy.root_cause_to_string cause)
        (pct (Bugstudy.fraction_by_cause cause))
        (pct (Bugstudy.crash_fraction_by_cause cause)))
    [ Bugstudy.Semantic; Bugstudy.Sensor_fault; Bugstudy.Memory; Bugstudy.Other ];
  Printf.printf "\nsensor-bug reproducibility (Fig. 3B): %.0f%% default settings\n"
    (pct Bugstudy.sensor_default_reproducible_fraction);
  Printf.printf "\nsensor-bug symptoms (Fig. 3C):\n";
  List.iter
    (fun (symptom, n) ->
      Printf.printf "  %-12s %d\n" (Bugstudy.symptom_to_string symptom) n)
    (Bugstudy.symptom_breakdown Bugstudy.sensor_bugs);
  Printf.printf "\nexample sensor-bug records:\n";
  List.iteri
    (fun i r ->
      if i < 5 then
        Printf.printf "  %s: %s [%s, %s]\n" r.Bugstudy.id r.Bugstudy.summary
          (Bugstudy.symptom_to_string r.Bugstudy.symptom)
          (match r.Bugstudy.reproducibility with
          | Bugstudy.Default_settings -> "default settings"
          | Bugstudy.Special_settings -> "special settings"))
    Bugstudy.sensor_bugs
