(* Hunt for sensor bugs against the ArduPilot personality on the auto-box
   mission — a small-budget version of the paper's main experiment, with
   all four approaches of Table III racing in parallel on a domain pool.
   Each campaign is an independent cell with its own seed and budget, so
   the findings are identical whatever AVIS_JOBS is set to.

   Run with: AVIS_JOBS=4 dune exec examples/fault_hunt.exe *)

open Avis_util
open Avis_core

let budget_s = 1500.0
let policy = Avis_firmware.Policy.apm
let workload = Workload.auto_box

let approaches =
  [
    ("Avis", fun ctx -> Sabre.make ctx);
    ("Strat-BFI", fun ctx -> Strat_bfi.make ctx);
    ("BFI", fun ctx -> Bfi.make ctx);
    ("Random", fun ctx -> Random_search.make ctx);
  ]

let hunt (name, strategy) =
  let started = Metrics.now_s () in
  let config =
    {
      (Campaign.default_config policy workload) with
      Campaign.budget_s;
      seed =
        Campaign.cell_seed ~policy:policy.Avis_firmware.Policy.name
          ~workload:workload.Workload.name ~approach:name ();
    }
  in
  let result = Campaign.run config ~strategy in
  let store_hits, store_misses, store_bytes =
    match result.Campaign.cache_stats with
    | Some s -> Prefix_cache.(s.store_hits, s.store_misses, s.store_bytes)
    | None -> (0, 0, 0)
  in
  let snapshot =
    {
      Metrics.cell =
        Printf.sprintf "%s/%s/%s" name policy.Avis_firmware.Policy.name
          workload.Workload.name;
      simulations = result.Campaign.simulations;
      inferences = result.Campaign.inferences;
      spent_s = result.Campaign.wall_clock_spent_s;
      budget_s;
      findings = Campaign.unsafe_count result;
      wall_s = Metrics.now_s () -. started;
      minor_words = result.Campaign.minor_words;
      major_collections = result.Campaign.major_collections;
      store_hits;
      store_misses;
      store_bytes;
    }
  in
  Metrics.emit ~event:"done" snapshot;
  (name, result, snapshot)

let () =
  let jobs = Pool.jobs_of_env () in
  Printf.printf
    "Profiling %s on %s, then hunting with %d approaches on %d domain(s) \
     (%.0f s wall-clock budget each)...\n%!"
    policy.Avis_firmware.Policy.name workload.Workload.name
    (List.length approaches) jobs budget_s;
  let results = Pool.map ~jobs hunt approaches in
  List.iter
    (fun (name, result, _) ->
      Printf.printf "\n%s: %d simulations, %d unsafe conditions found:\n" name
        result.Campaign.simulations
        (Campaign.unsafe_count result);
      List.iteri
        (fun i f ->
          Printf.printf "%2d. (simulation #%d)\n    %s\n" (i + 1)
            f.Campaign.simulation_index
            (Report.describe f.Campaign.report))
        result.Campaign.findings;
      Printf.printf "unsafe conditions by operating mode at injection:\n";
      List.iter
        (fun (bucket, n) ->
          Printf.printf "  %-8s %d\n" (Report.bucket_label bucket) n)
        (Campaign.count_by_bucket result))
    results;
  Metrics.summary (List.map (fun (_, _, s) -> s) results)
