(* Find one unsafe condition, then reproduce it under a different
   nondeterminism seed using the paper's mode-relative replay (§IV-D):
   faults are re-injected at the same offsets from the mode transitions
   they originally followed, so small scheduler-timing shifts do not break
   reproduction.

   Run with: dune exec examples/replay_bug.exe *)

open Avis_core

let () =
  let config =
    {
      (Campaign.default_config Avis_firmware.Policy.apm Workload.auto_box) with
      Campaign.budget_s = 2400.0;
    }
  in
  Printf.printf "Hunting until the first unsafe condition...\n%!";
  let result =
    Campaign.run ~stop_when:(fun _ -> true) config
      ~strategy:(fun ctx -> Sabre.make ctx)
  in
  match result.Campaign.findings with
  | [] -> Printf.printf "no unsafe condition found within the budget\n"
  | finding :: _ ->
    let report = finding.Campaign.report in
    Printf.printf "found after %d simulations:\n  %s\n\n"
      finding.Campaign.simulation_index
      (Report.describe report);
    Printf.printf "recorded mode-relative fault offsets:\n";
    List.iter
      (fun rf ->
        Printf.printf "  %s: %.2f s after entering %s\n"
          (match rf.Report.subject with
          | Report.Subject_sensor id -> Avis_sensors.Sensor.id_to_string id
          | Report.Subject_link duration ->
            Printf.sprintf "link outage (%.1f s)" duration)
          rf.Report.offset_s rf.Report.mode)
      report.Report.relative_faults;
    List.iter
      (fun seed ->
        let r =
          Replay.replay ~config ~profile:result.Campaign.profile ~seed report
        in
        Printf.printf "replay with seed %d: %s\n" seed
          (if r.Replay.reproduced then "reproduced"
           else "NOT reproduced"))
      [ 101; 202; 303 ]
