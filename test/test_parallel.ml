(* Parallel campaign execution: the domain pool, the structured metrics
   lines, the zero-progress guard on the search loop, and the guarantee
   that a parallel campaign matrix is identical, finding for finding, to
   the sequential one. *)

open Avis_util
open Avis_firmware
open Avis_core

(* Pool *)

let test_pool_map_order () =
  let items = List.init 50 Fun.id in
  Alcotest.(check (list int))
    "order preserved" (List.map (fun x -> 2 * x) items)
    (Pool.map ~jobs:4 (fun x -> 2 * x) items)

let test_pool_inline_matches_parallel () =
  let items = List.init 20 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int))
    "jobs=1 equals jobs=8" (Pool.map ~jobs:1 f items) (Pool.map ~jobs:8 f items)

let test_pool_more_jobs_than_items () =
  Alcotest.(check (list int)) "2 items on 16 workers" [ 2; 3 ]
    (Pool.map ~jobs:16 succ [ 1; 2 ])

let test_pool_empty () =
  Alcotest.(check (list int)) "empty input" [] (Pool.map ~jobs:4 succ [])

exception Boom

let test_pool_propagates_exception () =
  Alcotest.check_raises "job failure re-raised" Boom (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun x -> if x = 3 then raise Boom else x)
           (List.init 8 Fun.id)))

let test_pool_submit_and_close () =
  let pool = Pool.create ~jobs:3 in
  Alcotest.(check int) "worker count" 3 (Pool.jobs pool);
  let counter = Atomic.make 0 in
  for _ = 1 to 100 do
    Pool.submit pool (fun () -> Atomic.incr counter)
  done;
  Pool.close_and_wait pool;
  Alcotest.(check int) "all jobs ran" 100 (Atomic.get counter);
  Alcotest.check_raises "submit after close"
    (Invalid_argument "Pool.submit: pool is closed") (fun () ->
      Pool.submit pool (fun () -> ()))

let test_pool_inline_close () =
  let pool = Pool.create ~jobs:1 in
  let ran = ref false in
  Pool.submit pool (fun () -> ran := true);
  Alcotest.(check bool) "inline job ran at submit" true !ran;
  Pool.close_and_wait pool;
  Alcotest.check_raises "inline submit after close"
    (Invalid_argument "Pool.submit: pool is closed") (fun () ->
      Pool.submit pool (fun () -> ()))

let test_pool_env_defaults () =
  Alcotest.(check int) "unset variable falls back to the hardware"
    (Pool.default_jobs ())
    (Pool.jobs_of_env ~var:"AVIS_TEST_SURELY_UNSET_JOBS" ())

(* Metrics *)

let test_metrics_line_format () =
  let s =
    {
      Metrics.cell = "Avis/apm/auto-box"; simulations = 41; inferences = 7;
      spent_s = 612.04; budget_s = 7200.0; findings = 3; wall_s = 0.84;
    }
  in
  Alcotest.(check string) "grep-able key=value record"
    "[avis] event=progress cell=Avis/apm/auto-box sims=41 infs=7 \
     spent_s=612.0 budget_s=7200.0 findings=3 wall_s=0.8"
    (Metrics.line ~event:"progress" s)

let test_metrics_clock_monotonic () =
  let a = Metrics.now_s () in
  let b = Metrics.now_s () in
  Alcotest.(check bool) "non-decreasing" true (b >= a)

(* The zero-progress guard: a searcher that keeps thinking at zero cost
   must still drain the budget and terminate. *)

let spinner _ctx =
  {
    Search.name = "spinner";
    next = (fun () -> Search.Think 0.0);
    observe = (fun _ _ -> ());
  }

let test_zero_cost_think_terminates () =
  let config =
    {
      (Campaign.default_config Policy.apm Workload.auto_box) with
      Campaign.budget_s = 2.0;
    }
  in
  let result = Campaign.run config ~strategy:spinner in
  Alcotest.(check int) "no simulations" 0 result.Campaign.simulations;
  Alcotest.(check (float 1e-9)) "budget fully drained, never exceeded" 2.0
    result.Campaign.wall_clock_spent_s;
  Alcotest.(check bool) "bounded think count" true
    (result.Campaign.inferences
    <= int_of_float (2.0 /. Budget.min_inference_s) + 1)

(* Determinism: the parallel matrix equals the sequential matrix. *)

let matrix_budget_s = 120.0

let matrix_approaches =
  [
    ("Avis", fun ctx -> Sabre.make ctx);
    ("Random", fun ctx -> Random_search.make ctx);
  ]

let run_matrix ~jobs =
  let cells =
    List.concat_map
      (fun policy ->
        List.map (fun approach -> (policy, approach)) matrix_approaches)
      [ Policy.apm; Policy.px4 ]
  in
  Pool.map ~jobs
    (fun (policy, (name, strategy)) ->
      let config =
        {
          (Campaign.default_config policy Workload.auto_box) with
          Campaign.budget_s = matrix_budget_s;
          seed =
            Campaign.cell_seed ~policy:policy.Policy.name
              ~workload:Workload.auto_box.Workload.name ~approach:name ();
        }
      in
      (name, policy.Policy.name, Campaign.run config ~strategy))
    cells

let fingerprint (result : Campaign.result) =
  ( result.Campaign.approach,
    result.Campaign.simulations,
    result.Campaign.inferences,
    result.Campaign.wall_clock_spent_s,
    List.map
      (fun f -> (f.Campaign.simulation_index, Report.describe f.Campaign.report))
      result.Campaign.findings )

let test_parallel_matrix_matches_sequential () =
  let sequential = run_matrix ~jobs:1 in
  let parallel = run_matrix ~jobs:4 in
  List.iter2
    (fun (name, policy, seq) (name', policy', par) ->
      Alcotest.(check string) "same cell approach" name name';
      Alcotest.(check string) "same cell policy" policy policy';
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s identical finding-for-finding" name policy)
        true
        (fingerprint seq = fingerprint par);
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s stays within budget" name policy)
        true
        (seq.Campaign.wall_clock_spent_s <= matrix_budget_s))
    sequential parallel

let test_cell_seed_stable_and_distinct () =
  let seed ?base approach =
    Campaign.cell_seed ?base ~policy:"apm" ~workload:"auto-box" ~approach ()
  in
  Alcotest.(check int) "stable across calls" (seed "Avis") (seed "Avis");
  Alcotest.(check bool) "distinct per approach" true (seed "Avis" <> seed "BFI");
  Alcotest.(check bool) "distinct per base seed" true
    (seed ~base:1 "Avis" <> seed ~base:2 "Avis");
  Alcotest.(check bool) "positive" true (seed "Avis" > 0)

let () =
  Alcotest.run "avis_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map keeps order" `Quick test_pool_map_order;
          Alcotest.test_case "inline = parallel" `Quick test_pool_inline_matches_parallel;
          Alcotest.test_case "more workers than items" `Quick test_pool_more_jobs_than_items;
          Alcotest.test_case "empty input" `Quick test_pool_empty;
          Alcotest.test_case "exception propagates" `Quick test_pool_propagates_exception;
          Alcotest.test_case "submit and close" `Quick test_pool_submit_and_close;
          Alcotest.test_case "inline close" `Quick test_pool_inline_close;
          Alcotest.test_case "env fallback" `Quick test_pool_env_defaults;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "line format" `Quick test_metrics_line_format;
          Alcotest.test_case "monotonic clock" `Quick test_metrics_clock_monotonic;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "zero-cost think terminates" `Quick test_zero_cost_think_terminates;
          Alcotest.test_case "cell seeds" `Quick test_cell_seed_stable_and_distinct;
          Alcotest.test_case "parallel matrix = sequential" `Slow test_parallel_matrix_matches_sequential;
        ] );
    ]
