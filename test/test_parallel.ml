(* Parallel campaign execution: the domain pool, the structured metrics
   lines, the zero-progress guard on the search loop, and the guarantee
   that a parallel campaign matrix is identical, finding for finding, to
   the sequential one. *)

open Avis_util
open Avis_firmware
open Avis_core

(* Pool *)

let test_pool_map_order () =
  let items = List.init 50 Fun.id in
  Alcotest.(check (list int))
    "order preserved" (List.map (fun x -> 2 * x) items)
    (Pool.map ~jobs:4 (fun x -> 2 * x) items)

let test_pool_inline_matches_parallel () =
  let items = List.init 20 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int))
    "jobs=1 equals jobs=8" (Pool.map ~jobs:1 f items) (Pool.map ~jobs:8 f items)

let test_pool_more_jobs_than_items () =
  Alcotest.(check (list int)) "2 items on 16 workers" [ 2; 3 ]
    (Pool.map ~jobs:16 succ [ 1; 2 ])

let test_pool_empty () =
  Alcotest.(check (list int)) "empty input" [] (Pool.map ~jobs:4 succ [])

exception Boom

let test_pool_propagates_exception () =
  Alcotest.check_raises "job failure re-raised" Boom (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun x -> if x = 3 then raise Boom else x)
           (List.init 8 Fun.id)))

let test_pool_submit_and_close () =
  let pool = Pool.create ~jobs:3 in
  Alcotest.(check int) "worker count" 3 (Pool.jobs pool);
  let counter = Atomic.make 0 in
  for _ = 1 to 100 do
    Pool.submit pool (fun () -> Atomic.incr counter)
  done;
  Pool.close_and_wait pool;
  Alcotest.(check int) "all jobs ran" 100 (Atomic.get counter);
  Alcotest.check_raises "submit after close"
    (Invalid_argument "Pool.submit: pool is closed") (fun () ->
      Pool.submit pool (fun () -> ()))

let test_pool_inline_close () =
  let pool = Pool.create ~jobs:1 in
  let ran = ref false in
  Pool.submit pool (fun () -> ran := true);
  Alcotest.(check bool) "inline job ran at submit" true !ran;
  Pool.close_and_wait pool;
  Alcotest.check_raises "inline submit after close"
    (Invalid_argument "Pool.submit: pool is closed") (fun () ->
      Pool.submit pool (fun () -> ()))

let test_pool_env_defaults () =
  Alcotest.(check int) "unset variable falls back to the hardware"
    (Pool.default_jobs ())
    (Pool.jobs_of_env ~var:"AVIS_TEST_SURELY_UNSET_JOBS" ())

let spin_until cond =
  while not (cond ()) do
    Domain.cpu_relax ()
  done

(* Regression for the shutdown race: a submitter blocked on a full queue
   must be woken and refused when the pool closes, never allowed to
   enqueue into a dead pool (which silently dropped the job and later
   surfaced as an opaque "job did not complete"). *)
let test_pool_close_while_submitter_blocked () =
  let pool = Pool.create ~jobs:2 in
  (* Park both workers on [gate] so nothing drains the queue. *)
  let gate = Atomic.make false in
  let running = Atomic.make 0 in
  for _ = 1 to 2 do
    Pool.submit pool (fun () ->
        Atomic.incr running;
        spin_until (fun () -> Atomic.get gate))
  done;
  spin_until (fun () -> Atomic.get running = 2);
  (* Fill the queue to capacity (2 * jobs) so the next submit blocks. *)
  let queued_ran = Atomic.make 0 in
  for _ = 1 to 4 do
    Pool.submit pool (fun () -> Atomic.incr queued_ran)
  done;
  let late_ran = Atomic.make false in
  let entered = Atomic.make false in
  let submitter =
    Domain.spawn (fun () ->
        Atomic.set entered true;
        match Pool.submit pool (fun () -> Atomic.set late_ran true) with
        | () -> `Accepted
        | exception Invalid_argument _ -> `Refused)
  in
  spin_until (fun () -> Atomic.get entered);
  (* Give the submitter time to block inside [not_full] before closing;
     if the close still wins the race, the entry check refuses it too,
     so the assertion below holds either way. *)
  let t0 = Metrics.now_s () in
  spin_until (fun () -> Metrics.now_s () -. t0 > 0.05);
  let closer = Domain.spawn (fun () -> Pool.close_and_wait pool) in
  let verdict = Domain.join submitter in
  Atomic.set gate true;
  Domain.join closer;
  Alcotest.(check bool) "blocked submit refused, not dropped" true
    (verdict = `Refused);
  Alcotest.(check bool) "refused job never ran" false (Atomic.get late_ran);
  Alcotest.(check int) "jobs accepted before close all ran" 4
    (Atomic.get queued_ran)

(* Inline (jobs=1) parity with Crew: a job failure is captured at submit
   and re-raised at close, and later jobs still run. *)
let test_pool_inline_defers_exception () =
  let pool = Pool.create ~jobs:1 in
  let ran_after = ref false in
  Pool.submit pool (fun () -> raise Boom);
  Pool.submit pool (fun () -> ran_after := true);
  Alcotest.(check bool) "jobs after a failure still run" true !ran_after;
  Alcotest.check_raises "failure deferred to close" Boom (fun () ->
      Pool.close_and_wait pool);
  (* The failure was consumed by the first close; closing again is a
     no-op. *)
  Pool.close_and_wait pool

let test_pool_double_close_idempotent () =
  let pool = Pool.create ~jobs:2 in
  Pool.submit pool (fun () -> raise Boom);
  Alcotest.check_raises "first close re-raises the job failure" Boom
    (fun () -> Pool.close_and_wait pool);
  (* Second close must neither re-raise nor re-join the workers. *)
  Pool.close_and_wait pool;
  Pool.close_and_wait pool

let test_pool_concurrent_close () =
  let pool = Pool.create ~jobs:2 in
  Pool.submit pool (fun () -> raise Boom);
  let close () =
    match Pool.close_and_wait pool with () -> 0 | exception Boom -> 1
  in
  let d1 = Domain.spawn close in
  let d2 = Domain.spawn close in
  Alcotest.(check int) "exactly one closer observes the failure" 1
    (Domain.join d1 + Domain.join d2)

let test_pool_map_lpt_matches_map () =
  let items = List.init 30 Fun.id in
  let f x = (x * 3) + 1 in
  Alcotest.(check (list int)) "results in input order, equal to map"
    (Pool.map ~jobs:4 f items)
    (Pool.map_lpt ~jobs:4 ~weight:float_of_int f items);
  Alcotest.(check (list int)) "empty input" []
    (Pool.map_lpt ~jobs:4 ~weight:float_of_int f [])

let test_pool_map_lpt_feeds_heaviest_first () =
  (* An inline pool (jobs=1) runs each job at submit, so the execution
     order observed here is exactly the feed order. *)
  let ran = ref [] in
  let items = [ 1.0; 5.0; 3.0; 5.0; 2.0 ] in
  let results =
    Pool.map_lpt ~jobs:1 ~weight:Fun.id
      (fun w ->
        ran := w :: !ran;
        w)
      items
  in
  Alcotest.(check (list (float 0.0))) "results keep input order" items results;
  Alcotest.(check (list (float 0.0))) "fed heaviest first, ties stable"
    [ 5.0; 5.0; 3.0; 2.0; 1.0 ] (List.rev !ran)

let test_pool_queue_wait () =
  let inline = Pool.create ~jobs:1 in
  Pool.submit inline (fun () -> ());
  Alcotest.(check (float 0.0)) "inline jobs never wait" 0.0
    (Pool.queue_wait_s inline);
  Pool.close_and_wait inline;
  let pool = Pool.create ~jobs:2 in
  let gate = Atomic.make false in
  let running = Atomic.make 0 in
  for _ = 1 to 2 do
    Pool.submit pool (fun () ->
        Atomic.incr running;
        spin_until (fun () -> Atomic.get gate))
  done;
  spin_until (fun () -> Atomic.get running = 2);
  (* Both workers parked on the gate: this job must sit in the queue. *)
  Pool.submit pool (fun () -> ());
  let t0 = Metrics.now_s () in
  spin_until (fun () -> Metrics.now_s () -. t0 > 0.02);
  Atomic.set gate true;
  Pool.close_and_wait pool;
  Alcotest.(check bool) "queued job's wait measured" true
    (Pool.queue_wait_s pool > 0.0)

(* Metrics *)

let test_metrics_line_format () =
  let s =
    {
      Metrics.cell = "Avis/apm/auto-box"; simulations = 41; inferences = 7;
      spent_s = 612.04; budget_s = 7200.0; findings = 3; wall_s = 0.84;
      minor_words = 12_500_000.0; major_collections = 2; store_hits = 5;
      store_misses = 1; store_bytes = 4096;
    }
  in
  Alcotest.(check string) "grep-able key=value record"
    "[avis] event=progress cell=Avis/apm/auto-box sims=41 infs=7 \
     spent_s=612.0 budget_s=7200.0 findings=3 wall_s=0.8 minor_mw=12.50 \
     majors=2 store_h=5 store_m=1 store_b=4096"
    (Metrics.line ~event:"progress" s)

let test_metrics_clock_monotonic () =
  let a = Metrics.now_s () in
  let b = Metrics.now_s () in
  Alcotest.(check bool) "non-decreasing" true (b >= a)

let snap ?(minor = 0.0) ?(majors = 0) ?(store = (0, 0, 0)) cell ~sims ~infs
    ~spent ~findings ~wall =
  let store_hits, store_misses, store_bytes = store in
  {
    Metrics.cell; simulations = sims; inferences = infs; spent_s = spent;
    budget_s = 7200.0; findings; wall_s = wall; minor_words = minor;
    major_collections = majors; store_hits; store_misses; store_bytes;
  }

let test_metrics_total_row () =
  let a =
    snap "Avis/apm/auto-box" ~sims:41 ~infs:7 ~spent:612.0 ~findings:3
      ~wall:0.8 ~minor:1.5e6 ~majors:2 ~store:(4, 2, 9000)
  in
  let b =
    snap "Avis/px4/auto-box" ~sims:9 ~infs:2 ~spent:88.5 ~findings:1 ~wall:2.5
      ~minor:0.5e6 ~majors:1 ~store:(1, 3, 5000)
  in
  let t = Metrics.total [ a; b ] in
  Alcotest.(check string) "labelled as the max-wall total" "TOTAL (wall = max)"
    t.Metrics.cell;
  Alcotest.(check int) "sims summed" 50 t.Metrics.simulations;
  Alcotest.(check int) "infs summed" 9 t.Metrics.inferences;
  Alcotest.(check (float 1e-9)) "spend summed" 700.5 t.Metrics.spent_s;
  Alcotest.(check int) "findings summed" 4 t.Metrics.findings;
  (* Concurrent cells overlap in real time: wall is a max, not a sum —
     but allocation and collections are per-domain work, so they add. *)
  Alcotest.(check (float 1e-9)) "wall is the max" 2.5 t.Metrics.wall_s;
  Alcotest.(check (float 1e-9)) "minor words summed" 2.0e6 t.Metrics.minor_words;
  Alcotest.(check int) "majors summed" 3 t.Metrics.major_collections;
  Alcotest.(check int) "store hits summed" 5 t.Metrics.store_hits;
  Alcotest.(check int) "store misses summed" 5 t.Metrics.store_misses;
  (* Cells may share one store directory, so bytes take the max. *)
  Alcotest.(check int) "store bytes are the max" 9000 t.Metrics.store_bytes

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let test_metrics_summary_table () =
  let a = snap "a" ~sims:1 ~infs:0 ~spent:1.0 ~findings:0 ~wall:1.0 in
  let b = snap "b" ~sims:2 ~infs:0 ~spent:2.0 ~findings:0 ~wall:2.0 in
  let two = Table.render (Metrics.summary_table [ a; b ]) in
  Alcotest.(check bool) "TOTAL row present for two cells" true
    (contains ~needle:"TOTAL (wall = max)" two);
  let one = Table.render (Metrics.summary_table [ a ]) in
  Alcotest.(check bool) "no TOTAL row for a single cell" false
    (contains ~needle:"TOTAL" one)

(* The zero-progress guard: a searcher that keeps thinking at zero cost
   must still drain the budget and terminate. *)

let spinner _ctx =
  {
    Search.name = "spinner";
    next = (fun () -> Search.Think 0.0);
    observe = (fun _ _ -> ());
  }

let test_zero_cost_think_terminates () =
  let config =
    {
      (Campaign.default_config Policy.apm Workload.auto_box) with
      Campaign.budget_s = 2.0;
    }
  in
  let result = Campaign.run config ~strategy:spinner in
  Alcotest.(check int) "no simulations" 0 result.Campaign.simulations;
  Alcotest.(check (float 1e-9)) "budget fully drained, never exceeded" 2.0
    result.Campaign.wall_clock_spent_s;
  Alcotest.(check bool) "bounded think count" true
    (result.Campaign.inferences
    <= int_of_float (2.0 /. Budget.min_inference_s) + 1)

(* Determinism: the parallel matrix equals the sequential matrix. *)

let matrix_budget_s = 120.0

let matrix_approaches =
  [
    ("Avis", fun ctx -> Sabre.make ctx);
    ("Random", fun ctx -> Random_search.make ctx);
  ]

let run_matrix ~jobs =
  let cells =
    List.concat_map
      (fun policy ->
        List.map (fun approach -> (policy, approach)) matrix_approaches)
      [ Policy.apm; Policy.px4 ]
  in
  Pool.map ~jobs
    (fun (policy, (name, strategy)) ->
      let config =
        {
          (Campaign.default_config policy Workload.auto_box) with
          Campaign.budget_s = matrix_budget_s;
          seed =
            Campaign.cell_seed ~policy:policy.Policy.name
              ~workload:Workload.auto_box.Workload.name ~approach:name ();
        }
      in
      (name, policy.Policy.name, Campaign.run config ~strategy))
    cells

let fingerprint (result : Campaign.result) =
  ( result.Campaign.approach,
    result.Campaign.simulations,
    result.Campaign.inferences,
    result.Campaign.wall_clock_spent_s,
    List.map
      (fun f -> (f.Campaign.simulation_index, Report.describe f.Campaign.report))
      result.Campaign.findings )

let test_parallel_matrix_matches_sequential () =
  let sequential = run_matrix ~jobs:1 in
  let parallel = run_matrix ~jobs:4 in
  List.iter2
    (fun (name, policy, seq) (name', policy', par) ->
      Alcotest.(check string) "same cell approach" name name';
      Alcotest.(check string) "same cell policy" policy policy';
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s identical finding-for-finding" name policy)
        true
        (fingerprint seq = fingerprint par);
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s stays within budget" name policy)
        true
        (seq.Campaign.wall_clock_spent_s <= matrix_budget_s))
    sequential parallel

let test_cell_seed_stable_and_distinct () =
  let seed ?base approach =
    Campaign.cell_seed ?base ~policy:"apm" ~workload:"auto-box" ~approach ()
  in
  Alcotest.(check int) "stable across calls" (seed "Avis") (seed "Avis");
  Alcotest.(check bool) "distinct per approach" true (seed "Avis" <> seed "BFI");
  Alcotest.(check bool) "distinct per base seed" true
    (seed ~base:1 "Avis" <> seed ~base:2 "Avis");
  Alcotest.(check bool) "positive" true (seed "Avis" > 0)

(* Scheduler identity: a cell's bytes are a function of the cell alone,
   never of when or in what order the scheduler happened to run it. Any
   permutation of the execution order must yield byte-identical campaign
   records and journal contents. *)

let perm_specs =
  List.concat_map
    (fun (name, strategy) ->
      List.map (fun base -> (name, strategy, base)) [ 1; 2 ])
    [
      ("Avis", fun ctx -> Sabre.make ctx);
      ("Random", fun ctx -> Random_search.make ctx);
    ]

let perm_config (name, _, base) =
  {
    (Campaign.default_config Policy.apm Workload.quickstart) with
    Campaign.budget_s = 15.0;
    seed =
      Campaign.cell_seed ~base ~policy:Policy.apm.Policy.name
        ~workload:Workload.quickstart.Workload.name ~approach:name ();
  }

(* elapsed_bits is the one informational field allowed to differ between
   runs (measured wall time); everything else must match to the byte. *)
let perm_record_bytes record =
  Json.to_string
    (Run_journal.record_to_json { record with Run_journal.elapsed_bits = None })

let perm_run order =
  let path = Filename.temp_file "avis-perm" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let journal = Run_journal.open_ ~fingerprint:"perm" path in
  let digests =
    List.map
      (fun i ->
        let ((name, strategy, _) as spec) = List.nth perm_specs i in
        let config = perm_config spec in
        let result =
          Campaign.run ~journal ~journal_approach:name config ~strategy
        in
        ( i,
          perm_record_bytes
            (Campaign.record_of_result config ~approach:name
               ~fingerprint:"perm" result) ))
      order
  in
  (* Reopen the journal as a reader: the records it serves back must be
     byte-identical too, independent of the order they were appended. *)
  let reader = Run_journal.open_ ~fingerprint:"perm" path in
  let memos =
    List.mapi
      (fun i ((name, _, _) as spec) ->
        match Campaign.journal_memo reader (perm_config spec) ~approach:name with
        | Some record -> (i, perm_record_bytes record)
        | None -> (i, "missing"))
      perm_specs
  in
  (List.sort compare digests, memos)

let perm_reference = lazy (perm_run [ 0; 1; 2; 3 ])

let test_permutation_identity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:5
       ~name:"any execution order yields byte-identical cells"
       (QCheck.make
          ~print:(fun order ->
            String.concat "," (List.map string_of_int order))
          (QCheck.Gen.shuffle_l [ 0; 1; 2; 3 ]))
       (fun order ->
         let ref_results, ref_memos = Lazy.force perm_reference in
         let results, memos = perm_run order in
         results = ref_results && memos = ref_memos))

let () =
  Alcotest.run "avis_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map keeps order" `Quick test_pool_map_order;
          Alcotest.test_case "inline = parallel" `Quick test_pool_inline_matches_parallel;
          Alcotest.test_case "more workers than items" `Quick test_pool_more_jobs_than_items;
          Alcotest.test_case "empty input" `Quick test_pool_empty;
          Alcotest.test_case "exception propagates" `Quick test_pool_propagates_exception;
          Alcotest.test_case "submit and close" `Quick test_pool_submit_and_close;
          Alcotest.test_case "inline close" `Quick test_pool_inline_close;
          Alcotest.test_case "env fallback" `Quick test_pool_env_defaults;
          Alcotest.test_case "close refuses blocked submitter" `Quick
            test_pool_close_while_submitter_blocked;
          Alcotest.test_case "inline defers exception" `Quick
            test_pool_inline_defers_exception;
          Alcotest.test_case "double close idempotent" `Quick
            test_pool_double_close_idempotent;
          Alcotest.test_case "concurrent close" `Quick
            test_pool_concurrent_close;
          Alcotest.test_case "map_lpt = map" `Quick
            test_pool_map_lpt_matches_map;
          Alcotest.test_case "map_lpt feeds heaviest first" `Quick
            test_pool_map_lpt_feeds_heaviest_first;
          Alcotest.test_case "queue wait measured" `Quick
            test_pool_queue_wait;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "line format" `Quick test_metrics_line_format;
          Alcotest.test_case "monotonic clock" `Quick test_metrics_clock_monotonic;
          Alcotest.test_case "total row" `Quick test_metrics_total_row;
          Alcotest.test_case "summary table" `Quick test_metrics_summary_table;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "zero-cost think terminates" `Quick test_zero_cost_think_terminates;
          Alcotest.test_case "cell seeds" `Quick test_cell_seed_stable_and_distinct;
          Alcotest.test_case "parallel matrix = sequential" `Slow test_parallel_matrix_matches_sequential;
          test_permutation_identity;
        ] );
    ]
