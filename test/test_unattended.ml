(* Unattended operation: the resumable run journal (crash-safe JSONL,
   torn-line recovery, stale-fingerprint invalidation, campaign memos),
   the watchdogged retry/quarantine engine, and the cooperative
   interrupt flag. *)

open Avis_firmware
open Avis_core

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)
(* ------------------------------------------------------------------ *)

let temp_counter = ref 0

let with_journal_path f =
  incr temp_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "avis-test-journal-%d-%d.jsonl" (Unix.getpid ())
         !temp_counter)
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".stale" ])
    (fun () -> f path)

let sample_record ~key =
  {
    Run_journal.key;
    label = "avis/ArduPilot/quickstart";
    simulations = 17;
    inferences = 3;
    spent_bits = Int64.bits_of_float 123.456;
    elapsed_bits = Some (Int64.bits_of_float 0.75);
    findings =
      [
        {
          Run_journal.simulation_index = 4;
          description = "safety: ground impact (14.38 m/s) at t=6.9s";
          bucket = "Takeoff";
          bugs = [ "APM-16021"; "APM-16027" ];
        };
        {
          Run_journal.simulation_index = 9;
          description = "liveliness violation at t=3.7s";
          bucket = "Land";
          bugs = [];
        };
      ];
  }

let small_config () =
  {
    (Campaign.default_config Policy.apm Workload.quickstart) with
    Campaign.budget_s = 60.0;
    seed = 7;
  }

let sabre ctx = Sabre.make ctx

(* ------------------------------------------------------------------ *)
(* Journal file format                                                  *)
(* ------------------------------------------------------------------ *)

let test_journal_roundtrip () =
  with_journal_path @@ fun path ->
  let j = Run_journal.open_ ~fingerprint:"fp-a" path in
  let key = Run_journal.key ~fingerprint:"fp-a" ~config_bytes:"cfg" in
  Alcotest.(check bool) "empty journal serves nothing" true
    (Run_journal.find j ~key = None);
  let r = sample_record ~key in
  Run_journal.record_complete j r;
  Alcotest.(check bool) "served in-process" true
    (Run_journal.find j ~key = Some r);
  let j2 = Run_journal.open_ ~fingerprint:"fp-a" path in
  Alcotest.(check int) "loaded on reopen" 1 (Run_journal.completed_count j2);
  match Run_journal.find j2 ~key with
  | None -> Alcotest.fail "record lost across reopen"
  | Some r' ->
    Alcotest.(check bool) "bit-identical across reopen" true (r' = r);
    Alcotest.(check (float 0.0)) "spent seconds decode by bits" 123.456
      (Run_journal.spent_s r')

let test_journal_torn_line () =
  with_journal_path @@ fun path ->
  let j = Run_journal.open_ ~fingerprint:"fp-a" path in
  let key1 = Run_journal.key ~fingerprint:"fp-a" ~config_bytes:"one" in
  Run_journal.record_complete j (sample_record ~key:key1);
  (* A crash mid-append leaves a torn, newline-less trailing line. *)
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
  output_string oc "{\"key\":\"deadbeef\",\"label\":\"torn";
  close_out oc;
  let j2 = Run_journal.open_ ~fingerprint:"fp-a" path in
  Alcotest.(check int) "torn line skipped, rest intact" 1
    (Run_journal.completed_count j2);
  Alcotest.(check bool) "intact record still served" true
    (Run_journal.find j2 ~key:key1 <> None);
  (* The next append must terminate the torn line first, or it would
     corrupt itself by concatenation. *)
  let key2 = Run_journal.key ~fingerprint:"fp-a" ~config_bytes:"two" in
  Run_journal.record_complete j2 (sample_record ~key:key2);
  let j3 = Run_journal.open_ ~fingerprint:"fp-a" path in
  Alcotest.(check int) "append after torn line is clean" 2
    (Run_journal.completed_count j3);
  Alcotest.(check bool) "appended record served" true
    (Run_journal.find j3 ~key:key2 <> None)

let test_journal_stale_fingerprint () =
  with_journal_path @@ fun path ->
  let j = Run_journal.open_ ~fingerprint:"build-a" path in
  let key = Run_journal.key ~fingerprint:"build-a" ~config_bytes:"cfg" in
  Run_journal.record_complete j (sample_record ~key);
  (* A rebuilt binary must not serve the old build's memos. *)
  let j2 = Run_journal.open_ ~fingerprint:"build-b" path in
  Alcotest.(check int) "no stale memos loaded" 0
    (Run_journal.completed_count j2);
  Alcotest.(check bool) "no stale memos served" true
    (Run_journal.find j2 ~key = None);
  Alcotest.(check bool) "stale journal preserved aside" true
    (Sys.file_exists (path ^ ".stale"));
  let key_b = Run_journal.key ~fingerprint:"build-b" ~config_bytes:"cfg" in
  Run_journal.record_complete j2 (sample_record ~key:key_b);
  let j3 = Run_journal.open_ ~fingerprint:"build-b" path in
  Alcotest.(check int) "fresh journal usable after invalidation" 1
    (Run_journal.completed_count j3)

let test_journal_interrupted_marker () =
  with_journal_path @@ fun path ->
  let j = Run_journal.open_ ~fingerprint:"fp" path in
  let key = Run_journal.key ~fingerprint:"fp" ~config_bytes:"cfg" in
  Run_journal.record_interrupted j ~key ~label:"cell";
  let j2 = Run_journal.open_ ~fingerprint:"fp" path in
  Alcotest.(check bool) "incomplete marker never served" true
    (Run_journal.find j2 ~key = None);
  Alcotest.(check int) "marker counted" 1 (Run_journal.interrupted_count j2);
  Alcotest.(check int) "not counted complete" 0
    (Run_journal.completed_count j2)

let test_journal_key_sensitivity () =
  let key = Run_journal.key in
  Alcotest.(check bool) "config changes the key" true
    (key ~fingerprint:"fp" ~config_bytes:"a"
    <> key ~fingerprint:"fp" ~config_bytes:"b");
  Alcotest.(check bool) "fingerprint changes the key" true
    (key ~fingerprint:"fp1" ~config_bytes:"a"
    <> key ~fingerprint:"fp2" ~config_bytes:"a");
  Alcotest.(check bool) "key is deterministic" true
    (key ~fingerprint:"fp" ~config_bytes:"a"
    = key ~fingerprint:"fp" ~config_bytes:"a")

let test_journal_elapsed_roundtrip () =
  with_journal_path @@ fun path ->
  let j = Run_journal.open_ ~fingerprint:"fp" path in
  let key_with = Run_journal.key ~fingerprint:"fp" ~config_bytes:"with" in
  let key_without = Run_journal.key ~fingerprint:"fp" ~config_bytes:"without" in
  (* Not representable in decimal: the duration must survive by bits. *)
  let elapsed = 0.1 +. 0.2 in
  Run_journal.record_complete j
    { (sample_record ~key:key_with) with
      Run_journal.elapsed_bits = Some (Int64.bits_of_float elapsed) };
  Run_journal.record_complete j
    { (sample_record ~key:key_without) with Run_journal.elapsed_bits = None };
  let j2 = Run_journal.open_ ~fingerprint:"fp" path in
  (match Run_journal.find j2 ~key:key_with with
  | None -> Alcotest.fail "record with elapsed lost across reopen"
  | Some r ->
    Alcotest.(check (float 0.0)) "elapsed decodes by bits" elapsed
      (Option.get (Run_journal.elapsed_s r)));
  match Run_journal.find j2 ~key:key_without with
  | None -> Alcotest.fail "record without elapsed lost across reopen"
  | Some r ->
    Alcotest.(check bool) "absent elapsed stays absent" true
      (Run_journal.elapsed_s r = None)

(* A journal written before the elapsed_bits field existed must still
   parse and memo-serve; its records simply carry no duration. *)
let test_journal_old_line_tolerated () =
  with_journal_path @@ fun path ->
  let j = Run_journal.open_ ~fingerprint:"fp" path in
  ignore (j : Run_journal.t);
  let key = Run_journal.key ~fingerprint:"fp" ~config_bytes:"old" in
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
  Printf.fprintf oc
    "{\"key\":\"%s\",\"label\":\"avis/ArduPilot/quickstart\",\"complete\":true,\
     \"sims\":17,\"infs\":3,\"spent_bits\":\"405edd2f1a9fbe77\",\"findings\":[]}\n"
    key;
  close_out oc;
  let j2 = Run_journal.open_ ~fingerprint:"fp" path in
  Alcotest.(check int) "pre-elapsed line still loads" 1
    (Run_journal.completed_count j2);
  match Run_journal.find j2 ~key with
  | None -> Alcotest.fail "pre-elapsed record not served"
  | Some r ->
    Alcotest.(check (float 0.0)) "spent bits intact" 123.456
      (Run_journal.spent_s r);
    Alcotest.(check bool) "no duration invented" true
      (Run_journal.elapsed_s r = None)

(* ------------------------------------------------------------------ *)
(* Cost model                                                           *)
(* ------------------------------------------------------------------ *)

let test_cost_model_predictions () =
  let m = Cost_model.create () in
  Alcotest.(check (float 0.0)) "empty model falls back to the budget" 30.0
    (Cost_model.predict m ~label:"a" ~budget_s:30.0);
  Cost_model.observe m ~label:"a" ~spent_s:10.0 ~elapsed_s:2.0;
  Cost_model.observe m ~label:"a" ~spent_s:10.0 ~elapsed_s:4.0;
  Alcotest.(check (float 1e-9)) "seen class predicts its mean" 3.0
    (Cost_model.predict m ~label:"a" ~budget_s:30.0);
  (* Unseen class: budget scaled by the global real-per-modelled ratio
     (6 elapsed over 20 spent = 0.3). *)
  Alcotest.(check (float 1e-9)) "unseen class scales the budget" 9.0
    (Cost_model.predict m ~label:"b" ~budget_s:30.0);
  Alcotest.(check int) "observations counted" 2 (Cost_model.observations m);
  (* Garbage measurements must not poison the model. *)
  Cost_model.observe m ~label:"a" ~elapsed_s:Float.nan;
  Cost_model.observe m ~label:"a" ~elapsed_s:(-1.0);
  Alcotest.(check int) "non-finite and negative ignored" 2
    (Cost_model.observations m)

let test_cost_model_of_journal () =
  with_journal_path @@ fun path ->
  let j = Run_journal.open_ ~fingerprint:"fp" path in
  let key1 = Run_journal.key ~fingerprint:"fp" ~config_bytes:"one" in
  let key2 = Run_journal.key ~fingerprint:"fp" ~config_bytes:"two" in
  Run_journal.record_complete j
    { (sample_record ~key:key1) with
      Run_journal.elapsed_bits = Some (Int64.bits_of_float 5.0) };
  (* A record without a duration (old journal) trains nothing. *)
  Run_journal.record_complete j
    { (sample_record ~key:key2) with Run_journal.elapsed_bits = None };
  let m = Cost_model.of_journal j in
  Alcotest.(check int) "only timed records train" 1
    (Cost_model.observations m);
  Alcotest.(check (float 1e-9)) "journal timing drives the prediction" 5.0
    (Cost_model.predict m ~label:"avis/ArduPilot/quickstart" ~budget_s:1000.0)

(* ------------------------------------------------------------------ *)
(* Campaign memos                                                       *)
(* ------------------------------------------------------------------ *)

let test_campaign_journal_memo () =
  with_journal_path @@ fun path ->
  let j = Run_journal.open_ ~fingerprint:"fp" path in
  let config = small_config () in
  Alcotest.(check bool) "no memo before the run" true
    (Campaign.journal_memo j config ~approach:"avis" = None);
  let live = Campaign.run ~journal:j ~journal_approach:"avis" config ~strategy:sabre in
  let j2 = Run_journal.open_ ~fingerprint:"fp" path in
  (match Campaign.journal_memo j2 config ~approach:"avis" with
  | None -> Alcotest.fail "completed cell not memoised"
  | Some m ->
    Alcotest.(check int) "simulations" live.Campaign.simulations
      m.Run_journal.simulations;
    Alcotest.(check int) "inferences" live.Campaign.inferences
      m.Run_journal.inferences;
    Alcotest.(check bool) "spent ledger bit-identical" true
      (m.Run_journal.spent_bits
      = Int64.bits_of_float live.Campaign.wall_clock_spent_s);
    Alcotest.(check bool) "live run journals its measured duration" true
      (match Run_journal.elapsed_s m with
      | Some d -> Float.is_finite d && d >= 0.0
      | None -> false);
    Alcotest.(check int) "finding count" (List.length live.Campaign.findings)
      (List.length m.Run_journal.findings);
    List.iter2
      (fun (f : Campaign.finding) (g : Run_journal.finding) ->
        Alcotest.(check int) "finding index" f.Campaign.simulation_index
          g.Run_journal.simulation_index;
        Alcotest.(check string) "finding description"
          (Report.describe f.Campaign.report)
          g.Run_journal.description)
      live.Campaign.findings m.Run_journal.findings);
  (* Another approach label is a different cell, another seed a different
     config: neither may be served this memo. *)
  Alcotest.(check bool) "approach isolates memos" true
    (Campaign.journal_memo j2 config ~approach:"random" = None);
  Alcotest.(check bool) "seed isolates memos" true
    (Campaign.journal_memo j2
       { config with Campaign.seed = config.Campaign.seed + 1 }
       ~approach:"avis"
    = None)

let test_interrupted_run_appends_nothing () =
  with_journal_path @@ fun path ->
  let j = Run_journal.open_ ~fingerprint:"fp" path in
  let config = small_config () in
  Campaign.request_interrupt ();
  Fun.protect ~finally:Campaign.clear_interrupt @@ fun () ->
  let partial =
    Campaign.run ~journal:j ~journal_approach:"avis" config ~strategy:sabre
  in
  Alcotest.(check int) "interrupted before any test simulation" 0
    partial.Campaign.simulations;
  let j2 = Run_journal.open_ ~fingerprint:"fp" path in
  Alcotest.(check int) "interrupted run appended no memo" 0
    (Run_journal.completed_count j2);
  Alcotest.(check bool) "no memo served" true
    (Campaign.journal_memo j2 config ~approach:"avis" = None)

(* ------------------------------------------------------------------ *)
(* Retry / backoff / quarantine                                         *)
(* ------------------------------------------------------------------ *)

let capture_sleeps () =
  let sleeps = ref [] in
  ( (fun s -> sleeps := !sleeps @ [ s ]),
    fun () -> !sleeps )

let test_retry_transient_then_success () =
  let sleep, sleeps = capture_sleeps () in
  let sup = { Campaign.default_supervision with Campaign.sleep } in
  let calls = ref 0 in
  match
    Campaign.with_retries ~supervision:sup ~label:"flaky-disk"
      (fun ~attempt ->
        incr calls;
        if attempt < 3 then raise (Sys_error "disk momentarily full");
        "ok")
  with
  | Campaign.Quarantined _ ->
    Alcotest.fail "transient failure should have been retried to success"
  | Campaign.Completed v ->
    Alcotest.(check string) "value from the succeeding attempt" "ok" v;
    Alcotest.(check int) "three attempts" 3 !calls;
    Alcotest.(check (list (float 1e-9))) "exponential backoff" [ 0.1; 0.2 ]
      (sleeps ())

let test_retry_exhaustion_quarantines () =
  let sleep, sleeps = capture_sleeps () in
  let sup = { Campaign.default_supervision with Campaign.sleep } in
  let retries0, quarantined0, _ = Campaign.watchdog_counters () in
  match
    Campaign.with_retries ~supervision:sup ~label:"always-flaky"
      (fun ~attempt:_ -> raise (Sys_error "flaky"))
  with
  | Campaign.Completed _ -> Alcotest.fail "cannot complete"
  | Campaign.Quarantined e ->
    Alcotest.(check string) "stable code" "CELL-IO" e.Campaign.code;
    Alcotest.(check int) "all attempts consumed" 3 e.Campaign.attempts;
    Alcotest.(check (list (float 1e-9))) "backoff before each retry"
      [ 0.1; 0.2 ] (sleeps ());
    let retries1, quarantined1, _ = Campaign.watchdog_counters () in
    Alcotest.(check int) "retries counted" 2 (retries1 - retries0);
    Alcotest.(check int) "quarantine counted" 1 (quarantined1 - quarantined0)

let test_non_transient_fails_immediately () =
  let sleep, sleeps = capture_sleeps () in
  let sup = { Campaign.default_supervision with Campaign.sleep } in
  match
    (Campaign.with_retries ~supervision:sup ~label:"deterministic" (fun ~attempt:_ ->
         failwith "profiling run crashed")
      : unit Campaign.supervised)
  with
  | Campaign.Completed _ -> Alcotest.fail "cannot complete"
  | Campaign.Quarantined e ->
    Alcotest.(check string) "stable code" "CELL-FAIL" e.Campaign.code;
    Alcotest.(check int) "no retry for deterministic failures" 1
      e.Campaign.attempts;
    Alcotest.(check (list (float 1e-9))) "no backoff" [] (sleeps ())

let test_deadline_quarantines () =
  let sleep, _ = capture_sleeps () in
  let sup =
    { Campaign.default_supervision with
      Campaign.cell_timeout_s = Some 0.0; sleep }
  in
  let _, _, deadline0 = Campaign.watchdog_counters () in
  match Campaign.run_supervised ~supervision:sup (small_config ()) ~strategy:sabre with
  | Campaign.Completed _ ->
    Alcotest.fail "a zero-second deadline cannot complete"
  | Campaign.Quarantined e ->
    Alcotest.(check string) "stable code" "CELL-DEADLINE" e.Campaign.code;
    Alcotest.(check int) "retried as transient, then quarantined" 3
      e.Campaign.attempts;
    let _, _, deadline1 = Campaign.watchdog_counters () in
    Alcotest.(check bool) "deadline hits counted" true
      (deadline1 - deadline0 >= 3)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "avis_unattended"
    [
      ( "journal",
        [
          Alcotest.test_case "round-trip across reopen" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "torn trailing line recovered" `Quick
            test_journal_torn_line;
          Alcotest.test_case "stale fingerprint invalidates loudly" `Quick
            test_journal_stale_fingerprint;
          Alcotest.test_case "interrupted marker never served" `Quick
            test_journal_interrupted_marker;
          Alcotest.test_case "key sensitivity" `Quick
            test_journal_key_sensitivity;
          Alcotest.test_case "elapsed duration round-trips by bits" `Quick
            test_journal_elapsed_roundtrip;
          Alcotest.test_case "pre-elapsed journal lines tolerated" `Quick
            test_journal_old_line_tolerated;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "mean, fallback and hygiene" `Quick
            test_cost_model_predictions;
          Alcotest.test_case "primed from the journal" `Quick
            test_cost_model_of_journal;
        ] );
      ( "campaign memos",
        [
          Alcotest.test_case "memo equals the live run" `Slow
            test_campaign_journal_memo;
          Alcotest.test_case "interrupted run appends nothing" `Slow
            test_interrupted_run_appends_nothing;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "transient failure retried to success" `Quick
            test_retry_transient_then_success;
          Alcotest.test_case "exhausted retries quarantine" `Quick
            test_retry_exhaustion_quarantines;
          Alcotest.test_case "deterministic failure quarantines at once" `Quick
            test_non_transient_fails_immediately;
          Alcotest.test_case "deadline hits quarantine the cell" `Slow
            test_deadline_quarantines;
        ] );
    ]
