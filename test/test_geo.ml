(* Tests for avis_geo: vector algebra, attitude quaternions and geodesy.
   The quaternion laws are property-tested — the body-frame integration
   convention in particular, since an inconsistency there only shows up
   once the vehicle yaws away from north. *)

open Avis_geo

let vec = Alcotest.testable Vec3.pp (Vec3.equal_eps ~eps:1e-6)

let rng = QCheck.Gen.float_range (-100.0) 100.0

let arb_vec =
  QCheck.make
    ~print:(fun v -> Vec3.to_string v)
    QCheck.Gen.(map3 Vec3.make rng rng rng)

let arb_angle = QCheck.float_range (-3.0) 3.0

let arb_unit_quat =
  QCheck.make
    ~print:(fun q -> Format.asprintf "%a" Quat.pp q)
    QCheck.Gen.(
      map3
        (fun roll pitch yaw -> Quat.of_euler ~roll ~pitch ~yaw)
        (float_range (-1.4) 1.4) (float_range (-1.4) 1.4)
        (float_range (-3.1) 3.1))

(* Vec3 *)

let test_vec_basics () =
  Alcotest.check vec "add" (Vec3.make 3.0 5.0 7.0)
    (Vec3.add (Vec3.make 1.0 2.0 3.0) (Vec3.make 2.0 3.0 4.0));
  Alcotest.check vec "sub" Vec3.zero (Vec3.sub Vec3.unit_x Vec3.unit_x);
  Alcotest.(check (float 1e-9)) "dot orthogonal" 0.0 (Vec3.dot Vec3.unit_x Vec3.unit_y);
  Alcotest.check vec "cross" Vec3.unit_z (Vec3.cross Vec3.unit_x Vec3.unit_y)

let prop_norm_scaling =
  QCheck.Test.make ~name:"norm scales linearly" ~count:200
    (QCheck.pair arb_vec (QCheck.float_range 0.0 10.0))
    (fun (v, s) ->
      Float.abs (Vec3.norm (Vec3.scale s v) -. (s *. Vec3.norm v)) < 1e-6)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"triangle inequality" ~count:200
    (QCheck.pair arb_vec arb_vec)
    (fun (a, b) -> Vec3.norm (Vec3.add a b) <= Vec3.norm a +. Vec3.norm b +. 1e-9)

let prop_cross_orthogonal =
  QCheck.Test.make ~name:"cross product orthogonal to operands" ~count:200
    (QCheck.pair arb_vec arb_vec)
    (fun (a, b) ->
      let c = Vec3.cross a b in
      Float.abs (Vec3.dot c a) < 1e-3 && Float.abs (Vec3.dot c b) < 1e-3)

let prop_normalize_unit =
  QCheck.Test.make ~name:"normalize yields unit or zero" ~count:200 arb_vec
    (fun v ->
      let n = Vec3.norm (Vec3.normalize v) in
      n = 0.0 || Float.abs (n -. 1.0) < 1e-9)

let test_clamp_norm () =
  let v = Vec3.make 3.0 4.0 0.0 in
  Alcotest.(check (float 1e-9)) "clamped" 2.0 (Vec3.norm (Vec3.clamp_norm 2.0 v));
  Alcotest.check vec "unchanged" v (Vec3.clamp_norm 10.0 v);
  Alcotest.check_raises "negative limit"
    (Invalid_argument "Vec3.clamp_norm: negative limit") (fun () ->
      ignore (Vec3.clamp_norm (-1.0) v))

let test_lerp () =
  Alcotest.check vec "midpoint" (Vec3.make 0.5 0.5 0.5)
    (Vec3.lerp Vec3.zero (Vec3.make 1.0 1.0 1.0) 0.5)

(* Quat *)

let prop_euler_roundtrip =
  QCheck.Test.make ~name:"euler -> quat -> euler roundtrip" ~count:300
    (QCheck.triple arb_angle (QCheck.float_range (-1.4) 1.4) arb_angle)
    (fun (roll, pitch, yaw) ->
      let q = Quat.of_euler ~roll ~pitch ~yaw in
      let r', p', y' = Quat.to_euler q in
      Float.abs (r' -. roll) < 1e-6
      && Float.abs (p' -. pitch) < 1e-6
      && Float.abs (y' -. yaw) < 1e-6)

let prop_rotate_preserves_norm =
  QCheck.Test.make ~name:"rotation preserves length" ~count:300
    (QCheck.pair arb_unit_quat arb_vec)
    (fun (q, v) -> Float.abs (Vec3.norm (Quat.rotate q v) -. Vec3.norm v) < 1e-6)

let prop_rotate_inverse =
  QCheck.Test.make ~name:"rotate_inv undoes rotate" ~count:300
    (QCheck.pair arb_unit_quat arb_vec)
    (fun (q, v) -> Vec3.equal_eps ~eps:1e-6 (Quat.rotate_inv q (Quat.rotate q v)) v)

let prop_mul_composes =
  QCheck.Test.make ~name:"mul composes rotations" ~count:300
    (QCheck.triple arb_unit_quat arb_unit_quat arb_vec)
    (fun (a, b, v) ->
      Vec3.equal_eps ~eps:1e-5
        (Quat.rotate (Quat.mul a b) v)
        (Quat.rotate a (Quat.rotate b v)))

(* The regression behind a real bug found during development: integrating
   body-frame rates must agree with composing a small body-frame rotation,
   at any yaw. *)
let prop_integrate_body_frame =
  QCheck.Test.make ~name:"integrate uses body-frame rates" ~count:200
    (QCheck.pair arb_unit_quat arb_vec)
    (fun (q, omega) ->
      let omega = Vec3.clamp_norm 2.0 omega in
      let dt = 0.001 in
      let integrated = Quat.integrate q omega dt in
      let small = Quat.of_axis_angle omega (Vec3.norm omega *. dt) in
      let composed = Quat.mul q small in
      Quat.angle_between integrated composed < 1e-4)

let test_integrate_roll_sign () =
  (* At yaw -1.9 (the failing case in development), a negative body roll
     rate must decrease the Euler roll. *)
  let q = Quat.of_euler ~roll:0.0 ~pitch:0.4 ~yaw:(-1.9) in
  let q' = ref q in
  for _ = 1 to 100 do
    q' := Quat.integrate !q' (Vec3.make (-1.0) 0.0 0.0) 0.004
  done;
  let roll, _, _ = Quat.to_euler !q' in
  Alcotest.(check bool) "roll decreased" true (roll < -0.3)

let test_tilt () =
  Alcotest.(check (float 1e-9)) "level" 0.0 (Quat.tilt Quat.identity);
  let tilted = Quat.of_euler ~roll:0.5 ~pitch:0.0 ~yaw:1.0 in
  Alcotest.(check (float 1e-6)) "roll tilt" 0.5 (Quat.tilt tilted)

let test_slerp_endpoints () =
  let a = Quat.of_euler ~roll:0.0 ~pitch:0.0 ~yaw:0.0 in
  let b = Quat.of_euler ~roll:0.0 ~pitch:0.0 ~yaw:1.0 in
  Alcotest.(check (float 1e-6)) "start" 0.0 (Quat.angle_between a (Quat.slerp a b 0.0));
  Alcotest.(check (float 1e-6)) "end" 0.0 (Quat.angle_between b (Quat.slerp a b 1.0));
  let mid = Quat.slerp a b 0.5 in
  let _, _, yaw = Quat.to_euler mid in
  Alcotest.(check (float 1e-6)) "midpoint yaw" 0.5 yaw

let test_normalize_zero () =
  let z = Quat.make ~w:0.0 ~x:0.0 ~y:0.0 ~z:0.0 in
  Alcotest.(check (float 1e-9)) "identity fallback" 1.0 (Quat.normalize z).Quat.w

(* Mut kernels: the destination-passing variants used by the physics hot
   loop must match the pure operations bit for bit, not merely within an
   epsilon — campaign determinism (cached vs cold runs, parallel vs
   sequential matrices) depends on the kernels being interchangeable. *)

let bits = Int64.bits_of_float

let same_vec (v : Vec3.t) (m : Vec3.Mut.vec) =
  bits v.Vec3.x = bits m.Vec3.Mut.x
  && bits v.Vec3.y = bits m.Vec3.Mut.y
  && bits v.Vec3.z = bits m.Vec3.Mut.z

let same_quat (q : Quat.t) (m : Quat.Mut.quat) =
  bits q.Quat.w = bits m.Quat.Mut.w
  && bits q.Quat.x = bits m.Quat.Mut.x
  && bits q.Quat.y = bits m.Quat.Mut.y
  && bits q.Quat.z = bits m.Quat.Mut.z

let prop_mut_vec_bit_identical =
  QCheck.Test.make ~name:"Mut vector kernels bit-identical to pure"
    ~count:500
    (QCheck.triple arb_vec arb_vec (QCheck.float_range (-10.0) 10.0))
    (fun (a, b, s) ->
      let ma = Vec3.Mut.of_t a and mb = Vec3.Mut.of_t b in
      let dst = Vec3.Mut.create () in
      let into pure op =
        op ();
        same_vec pure dst
      in
      into (Vec3.add a b) (fun () -> Vec3.Mut.add dst ma mb)
      && into (Vec3.sub a b) (fun () -> Vec3.Mut.sub dst ma mb)
      && into (Vec3.cross a b) (fun () -> Vec3.Mut.cross dst ma mb)
      && into (Vec3.scale s a) (fun () -> Vec3.Mut.scale dst s ma)
      && into (Vec3.neg a) (fun () -> Vec3.Mut.neg dst ma)
      && into (Vec3.horizontal a) (fun () -> Vec3.Mut.horizontal dst ma)
      && into (Vec3.normalize a) (fun () -> Vec3.Mut.normalize dst ma)
      && into (Vec3.clamp_norm (Float.abs s) a) (fun () ->
             Vec3.Mut.clamp_norm dst (Float.abs s) ma)
      && bits (Vec3.dot a b) = bits (Vec3.Mut.dot ma mb)
      && bits (Vec3.norm a) = bits (Vec3.Mut.norm ma)
      && bits (Vec3.norm_sq a) = bits (Vec3.Mut.norm_sq ma)
      (* The inputs must never be disturbed. *)
      && same_vec a ma
      && same_vec b mb)

(* Aliasing: the kernels advertise [dst] may be an operand. *)
let prop_mut_vec_alias_safe =
  QCheck.Test.make ~name:"Mut kernels alias-safe (dst = operand)" ~count:200
    (QCheck.pair arb_vec arb_vec)
    (fun (a, b) ->
      let d1 = Vec3.Mut.of_t a and mb = Vec3.Mut.of_t b in
      Vec3.Mut.cross d1 d1 mb;
      let d2 = Vec3.Mut.of_t a in
      Vec3.Mut.normalize d2 d2;
      same_vec (Vec3.cross a b) d1 && same_vec (Vec3.normalize a) d2)

let test_mut_vec_edges () =
  (* normalize of the zero vector stays zero in both worlds. *)
  let z = Vec3.Mut.create () in
  Vec3.Mut.normalize z z;
  Alcotest.(check bool) "normalize zero = zero" true
    (same_vec (Vec3.normalize Vec3.zero) z);
  (* clamp_norm at the boundary and below it. *)
  let v = Vec3.make 3.0 4.0 0.0 in
  let m = Vec3.Mut.of_t v in
  let dst = Vec3.Mut.create () in
  Vec3.Mut.clamp_norm dst 5.0 m;
  Alcotest.(check bool) "limit = norm leaves v" true
    (same_vec (Vec3.clamp_norm 5.0 v) dst);
  Vec3.Mut.clamp_norm dst 0.0 m;
  Alcotest.(check bool) "limit 0 matches pure" true
    (same_vec (Vec3.clamp_norm 0.0 v) dst);
  (* A negative limit is invalid in both, with the same message. *)
  Alcotest.check_raises "negative limit (Mut)"
    (Invalid_argument "Vec3.clamp_norm: negative limit") (fun () ->
      Vec3.Mut.clamp_norm dst (-1.0) m)

let prop_mut_quat_bit_identical =
  QCheck.Test.make ~name:"Mut quaternion kernels bit-identical to pure"
    ~count:500
    (QCheck.triple arb_unit_quat arb_vec (QCheck.float_range 0.0 0.05))
    (fun (q, v, dt) ->
      let mq = Quat.Mut.of_t q and mv = Vec3.Mut.of_t v in
      let dst = Vec3.Mut.create () in
      Quat.Mut.rotate dst mq mv;
      let rot_ok = same_vec (Quat.rotate q v) dst in
      Quat.Mut.rotate_inv dst mq mv;
      let inv_ok = same_vec (Quat.rotate_inv q v) dst in
      (* rotate with dst aliasing the input vector. *)
      let aliased = Vec3.Mut.of_t v in
      Quat.Mut.rotate aliased mq aliased;
      let alias_ok = same_vec (Quat.rotate q v) aliased in
      let tilt_ok = bits (Quat.tilt q) = bits (Quat.Mut.tilt mq) in
      let norm_ok = bits (Quat.norm q) = bits (Quat.Mut.norm mq) in
      Quat.Mut.integrate mq mv dt;
      let int_ok = same_quat (Quat.integrate q v dt) mq in
      rot_ok && inv_ok && alias_ok && tilt_ok && norm_ok && int_ok)

let test_mut_quat_normalize_zero () =
  let z = Quat.Mut.of_t (Quat.make ~w:0.0 ~x:0.0 ~y:0.0 ~z:0.0) in
  Quat.Mut.normalize z;
  Alcotest.(check bool) "identity fallback matches pure" true
    (same_quat (Quat.normalize (Quat.make ~w:0.0 ~x:0.0 ~y:0.0 ~z:0.0)) z)

(* Geodesy *)

let test_geodesy_roundtrip () =
  let home = { Geodesy.lat = 47.397742; lon = 8.545594; alt = 0.0 } in
  let frame = Geodesy.frame_at home in
  let p = Vec3.make 123.0 (-45.0) 20.0 in
  let back = Geodesy.to_local frame (Geodesy.of_local frame p) in
  Alcotest.check vec "roundtrip" p back

let prop_geodesy_roundtrip =
  QCheck.Test.make ~name:"local -> geodetic -> local" ~count:200
    (QCheck.triple (QCheck.float_range (-500.0) 500.0)
       (QCheck.float_range (-500.0) 500.0) (QCheck.float_range 0.0 100.0))
    (fun (x, y, z) ->
      let frame =
        Geodesy.frame_at { Geodesy.lat = 47.4; lon = 8.5; alt = 0.0 }
      in
      let p = Vec3.make x y z in
      Vec3.equal_eps ~eps:1e-4 (Geodesy.to_local frame (Geodesy.of_local frame p)) p)

let test_geodesy_scale () =
  (* One degree of latitude is about 111 km. *)
  let frame = Geodesy.frame_at { Geodesy.lat = 0.0; lon = 0.0; alt = 0.0 } in
  let north = Geodesy.to_local frame { Geodesy.lat = 1.0; lon = 0.0; alt = 0.0 } in
  Alcotest.(check bool) "~111 km" true
    (north.Vec3.x > 110_000.0 && north.Vec3.x < 112_500.0)

let test_e7 () =
  Alcotest.(check int) "encode" 473977420 (Geodesy.lat_to_e7 47.3977420);
  Alcotest.(check (float 1e-6)) "decode" 47.397742 (Geodesy.e7_to_deg 473977420)

let test_ground_distance () =
  let a = { Geodesy.lat = 47.4; lon = 8.5; alt = 0.0 } in
  let frame = Geodesy.frame_at a in
  let b = Geodesy.of_local frame (Vec3.make 300.0 400.0 55.0) in
  Alcotest.(check bool) "horizontal distance" true
    (Float.abs (Geodesy.ground_distance_m a b -. 500.0) < 1.0)

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "avis_geo"
    [
      ( "vec3",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "clamp_norm" `Quick test_clamp_norm;
          Alcotest.test_case "lerp" `Quick test_lerp;
          q prop_norm_scaling;
          q prop_triangle_inequality;
          q prop_cross_orthogonal;
          q prop_normalize_unit;
        ] );
      ( "quat",
        [
          Alcotest.test_case "integrate roll sign" `Quick test_integrate_roll_sign;
          Alcotest.test_case "tilt" `Quick test_tilt;
          Alcotest.test_case "slerp endpoints" `Quick test_slerp_endpoints;
          Alcotest.test_case "normalize zero" `Quick test_normalize_zero;
          q prop_euler_roundtrip;
          q prop_rotate_preserves_norm;
          q prop_rotate_inverse;
          q prop_mul_composes;
          q prop_integrate_body_frame;
        ] );
      ( "mut",
        [
          Alcotest.test_case "vec edge cases" `Quick test_mut_vec_edges;
          Alcotest.test_case "quat normalize zero" `Quick
            test_mut_quat_normalize_zero;
          q prop_mut_vec_bit_identical;
          q prop_mut_vec_alias_safe;
          q prop_mut_quat_bit_identical;
        ] );
      ( "geodesy",
        [
          Alcotest.test_case "roundtrip" `Quick test_geodesy_roundtrip;
          Alcotest.test_case "scale" `Quick test_geodesy_scale;
          Alcotest.test_case "e7" `Quick test_e7;
          Alcotest.test_case "ground distance" `Quick test_ground_distance;
          q prop_geodesy_roundtrip;
        ] );
    ]
