(* Tests for the search strategies: the shared candidate generator and the
   scheduling orders of SABRE, DFS, BFS, Random and the BFI variants. *)

open Avis_sensors
open Avis_core

let make_ctx ?(transitions = [ (2.0, "Pre-Flight", "Takeoff"); (10.0, "Takeoff", "Waypoint 1"); (30.0, "Waypoint 1", "Land") ]) () =
  let instances = Suite.instances_of_complement Suite.iris_complement in
  {
    Search.transitions;
    mission_duration = 50.0;
    instances;
    instances_of_kind =
      (fun kind ->
        List.length (List.filter (fun i -> i.Sensor.kind = kind) instances));
    mode_at =
      (fun time ->
        List.fold_left
          (fun acc (t, _, to_mode) -> if t <= time then Some to_mode else acc)
          (Some "Pre-Flight") transitions);
    rng = Avis_util.Rng.create 1;
  }

let drain ?(limit = 1000) searcher =
  (* Pull scenarios, reporting every run as safe with no transitions. *)
  let rec loop acc n =
    if n >= limit then List.rev acc
    else
      match searcher.Search.next () with
      | Search.Exhausted -> List.rev acc
      | Search.Think _ -> loop acc (n + 1)
      | Search.Run (scenario, _) ->
        searcher.Search.observe scenario
          { Search.unsafe = false; observed_transitions = [] };
        loop (scenario :: acc) (n + 1)
  in
  loop [] 0

let injection_time scenario =
  match Scenario.first_injection_time scenario with
  | Some t -> t
  | None -> Alcotest.fail "scenario without faults"

let test_candidates_cover_whole_kinds () =
  let ctx = make_ctx () in
  let candidates = Search.candidate_sets ctx ~at:5.0 ~base:Scenario.empty in
  (* Every redundant kind's whole-kind outage must be present. *)
  List.iter
    (fun kind ->
      let whole =
        List.exists
          (fun s ->
            let of_kind =
              List.filter (fun i -> i.Sensor.kind = kind) (Scenario.sensors_failed s)
            in
            List.length of_kind = ctx.Search.instances_of_kind kind)
          candidates
      in
      Alcotest.(check bool) (Sensor.kind_to_string kind ^ " whole-kind set") true whole)
    Sensor.all_kinds;
  (* No duplicates. *)
  let keys = List.map Scenario.key candidates in
  Alcotest.(check int) "unique" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_candidates_whole_kind_first () =
  let ctx = make_ctx () in
  let candidates = Search.candidate_sets ctx ~at:5.0 ~base:Scenario.empty in
  let first = List.hd candidates in
  Alcotest.(check bool) "first defeats redundancy" true
    (Scenario.cardinality first >= 2
    ||
    let ids = Scenario.sensors_failed first in
    List.length ids = 1
    && ctx.Search.instances_of_kind (List.hd ids).Sensor.kind = 1)

let test_candidates_include_link_loss () =
  let ctx = make_ctx () in
  let candidates = Search.candidate_sets ctx ~at:5.0 ~base:Scenario.empty in
  let outages = List.filter Scenario.has_link_loss candidates in
  Alcotest.(check bool) "link outages offered" true (outages <> []);
  List.iter
    (fun s ->
      Alcotest.(check (float 1e-9)) "scheduled at the site" 5.0
        (injection_time s))
    outages

let test_candidates_compose_base () =
  let ctx = make_ctx () in
  let base =
    Scenario.of_faults [ Scenario.sensor_fault { Sensor.kind = Sensor.Gps; index = 0 } 3.0 ]
  in
  let candidates = Search.candidate_sets ctx ~at:8.0 ~base in
  List.iter
    (fun s ->
      Alcotest.(check bool) "contains base" true (Scenario.subsumes ~smaller:base ~larger:s))
    candidates

let test_sabre_starts_at_transitions () =
  let ctx = make_ctx () in
  let searcher = Sabre.make ctx in
  let scenarios = drain ~limit:30 searcher in
  Alcotest.(check bool) "nonempty" true (scenarios <> []);
  List.iter
    (fun s ->
      Alcotest.(check (float 1e-6)) "first site is the first transition" 2.0
        (injection_time s))
    (List.filteri (fun i _ -> i < 3) scenarios)

let test_sabre_visits_all_transitions_before_shifts () =
  let ctx = make_ctx () in
  let searcher = Sabre.make ctx in
  let scenarios = drain ~limit:400 searcher in
  let times = List.sort_uniq compare (List.map injection_time scenarios) in
  Alcotest.(check bool) "site times include all transitions" true
    (List.mem 2.0 times && List.mem 10.0 times && List.mem 30.0 times)

let test_sabre_shifted_resites () =
  let ctx = make_ctx ~transitions:[ (2.0, "Pre-Flight", "Takeoff") ] () in
  let searcher = Sabre.make ctx in
  let scenarios = drain ~limit:300 searcher in
  let times = List.sort_uniq compare (List.map injection_time scenarios) in
  (* Line 20: after exhausting the site at 2.0, SABRE revisits 2.5, 3.0... *)
  Alcotest.(check bool) "shifted sites appear" true (List.mem 2.5 times)

let test_sabre_composes_on_observed_transitions () =
  let ctx = make_ctx ~transitions:[ (2.0, "Pre-Flight", "Takeoff") ] () in
  let searcher = Sabre.make ctx in
  (* Run one scenario and report a new transition at 20 s; later scenarios
     should compose on top of it. *)
  let first =
    match searcher.Search.next () with
    | Search.Run (s, _) -> s
    | _ -> Alcotest.fail "expected a run"
  in
  searcher.Search.observe first
    { Search.unsafe = false; observed_transitions = [ 20.0 ] };
  let rest = drain ~limit:2000 searcher in
  let composed =
    List.exists
      (fun s ->
        Scenario.cardinality s > Scenario.cardinality first
        && Scenario.subsumes ~smaller:first ~larger:s)
      rest
  in
  Alcotest.(check bool) "composite scenario generated" true composed

let test_sabre_found_bug_pruning () =
  let ctx = make_ctx ~transitions:[ (2.0, "Pre-Flight", "Takeoff") ] () in
  let searcher = Sabre.make ctx in
  (* Report the first scenario as a bug; no later scenario may subsume it. *)
  let first =
    match searcher.Search.next () with
    | Search.Run (s, _) -> s
    | _ -> Alcotest.fail "expected a run"
  in
  searcher.Search.observe first
    { Search.unsafe = true; observed_transitions = [] };
  let rest = drain ~limit:500 searcher in
  List.iter
    (fun s ->
      Alcotest.(check bool) "not a superset of the bug" false
        (Scenario.subsumes ~smaller:first ~larger:s))
    rest

let test_dfs_descends () =
  let ctx = make_ctx () in
  let searcher = Dfs.make ctx in
  let scenarios = drain ~limit:200 searcher in
  let times = List.map injection_time scenarios in
  let sorted_desc = List.sort (fun a b -> compare b a) times in
  Alcotest.(check (list (float 1e-9))) "monotonically late-to-early" sorted_desc times;
  Alcotest.(check bool) "starts at the end" true
    (Float.abs (List.hd times -. ctx.Search.mission_duration) < 0.2)

let test_bfs_ascends () =
  let ctx = make_ctx () in
  let searcher = Bfs.make ctx in
  let scenarios = drain ~limit:200 searcher in
  let times = List.map injection_time scenarios in
  let sorted_asc = List.sort compare times in
  Alcotest.(check (list (float 1e-9))) "monotonically early-to-late" sorted_asc times;
  Alcotest.(check (float 1e-9)) "starts at zero" 0.0 (List.hd times)

let test_random_within_mission () =
  let ctx = make_ctx () in
  let searcher = Random_search.make ctx in
  let scenarios = drain ~limit:300 searcher in
  Alcotest.(check int) "streams freely" 300 (List.length scenarios);
  List.iter
    (fun s ->
      let t = injection_time s in
      Alcotest.(check bool) "inside mission" true
        (t >= 0.0 && t <= ctx.Search.mission_duration))
    scenarios

let test_random_mostly_single_faults () =
  let ctx = make_ctx () in
  let searcher = Random_search.make ctx in
  let scenarios = drain ~limit:500 searcher in
  let singles =
    List.length (List.filter (fun s -> Scenario.cardinality s = 1) scenarios)
  in
  Alcotest.(check bool) "over half are single-instance" true
    (float_of_int singles /. float_of_int (List.length scenarios) > 0.5)

let test_bfi_pays_inference () =
  let ctx = make_ctx () in
  let searcher = Bfi.make ctx in
  let inference = ref 0.0 in
  let runs = ref 0 in
  for _ = 1 to 200 do
    match searcher.Search.next () with
    | Search.Run (s, cost) ->
      inference := !inference +. cost;
      incr runs;
      searcher.Search.observe s { Search.unsafe = false; observed_transitions = [] }
    | Search.Think cost -> inference := !inference +. cost
    | Search.Exhausted -> ()
  done;
  Alcotest.(check bool) "inference dominates" true (!inference >= 1000.0);
  Alcotest.(check bool) "rarely runs" true (!runs <= 20)

let test_strat_bfi_gates_by_mode () =
  (* All sites in Takeoff: the model rejects everything. *)
  let ctx = make_ctx ~transitions:[ (2.0, "Pre-Flight", "Takeoff") ] () in
  let searcher = Strat_bfi.make ctx in
  let ran = ref 0 and thought = ref 0 in
  for _ = 1 to 100 do
    match searcher.Search.next () with
    | Search.Run (s, _) ->
      incr ran;
      searcher.Search.observe s { Search.unsafe = false; observed_transitions = [] }
    | Search.Think _ -> incr thought
    | Search.Exhausted -> ()
  done;
  Alcotest.(check int) "nothing approved at takeoff" 0 !ran;
  Alcotest.(check bool) "candidates were considered" true (!thought > 50);
  (* Cruise sites get approvals. *)
  let ctx' = make_ctx ~transitions:[ (10.0, "Takeoff", "Waypoint 1") ] () in
  let searcher' = Strat_bfi.make ctx' in
  let ran' = ref 0 in
  for _ = 1 to 100 do
    match searcher'.Search.next () with
    | Search.Run (s, _) ->
      incr ran';
      searcher'.Search.observe s { Search.unsafe = false; observed_transitions = [] }
    | Search.Think _ | Search.Exhausted -> ()
  done;
  Alcotest.(check bool) "cruise scenarios approved" true (!ran' > 0)

let () =
  Alcotest.run "avis_search"
    [
      ( "candidates",
        [
          Alcotest.test_case "whole kinds covered" `Quick test_candidates_cover_whole_kinds;
          Alcotest.test_case "whole kinds first" `Quick test_candidates_whole_kind_first;
          Alcotest.test_case "compose base" `Quick test_candidates_compose_base;
          Alcotest.test_case "link loss offered" `Quick
            test_candidates_include_link_loss;
        ] );
      ( "sabre",
        [
          Alcotest.test_case "starts at transitions" `Quick test_sabre_starts_at_transitions;
          Alcotest.test_case "visits all transitions" `Quick test_sabre_visits_all_transitions_before_shifts;
          Alcotest.test_case "shifted revisits" `Quick test_sabre_shifted_resites;
          Alcotest.test_case "composes scenarios" `Quick test_sabre_composes_on_observed_transitions;
          Alcotest.test_case "found-bug pruning" `Quick test_sabre_found_bug_pruning;
        ] );
      ( "strawmen",
        [
          Alcotest.test_case "dfs descends" `Quick test_dfs_descends;
          Alcotest.test_case "bfs ascends" `Quick test_bfs_ascends;
          Alcotest.test_case "random in-mission" `Quick test_random_within_mission;
          Alcotest.test_case "random single-heavy" `Quick test_random_mostly_single_faults;
        ] );
      ( "bfi",
        [
          Alcotest.test_case "pays inference" `Quick test_bfi_pays_inference;
          Alcotest.test_case "strat-bfi mode gating" `Quick test_strat_bfi_gates_by_mode;
        ] );
    ]
