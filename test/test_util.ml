(* Tests for avis_util: the seeded PRNG, statistics helpers and the table
   renderer. *)

open Avis_util

let check_float = Alcotest.(check (float 1e-9))

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_copy_independent () =
  let a = Rng.create 3 in
  let b = Rng.copy a in
  let va = Rng.bits64 a in
  let vb = Rng.bits64 b in
  Alcotest.(check int64) "copy continues identically" va vb

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "split stream differs from parent" true
    (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_uniform_range () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let v = Rng.uniform rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create 17 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.uniform rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_rng_gaussian_moments () =
  let rng = Rng.create 19 in
  let n = 20_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.gaussian rng in
    sum := !sum +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 23 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let test_rng_choose_empty () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

let test_stats_mean () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "empty mean" 0.0 (Stats.mean [])

let test_stats_stddev () =
  check_float "constant" 0.0 (Stats.stddev [ 4.0; 4.0; 4.0 ]);
  check_float "single" 0.0 (Stats.stddev [ 4.0 ]);
  (* population stddev of {1,3} repeated is 1 *)
  check_float "pair" 1.0 (Stats.stddev [ 1.0; 3.0; 1.0; 3.0 ])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [ 3.0; -1.0; 7.5; 2.0 ] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.5 hi;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.min_max: empty list")
    (fun () -> ignore (Stats.min_max []))

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "median" 50.0 (Stats.percentile 50.0 xs);
  check_float "p100" 100.0 (Stats.percentile 100.0 xs);
  check_float "p1" 1.0 (Stats.percentile 1.0 xs)

let test_stats_clamp () =
  check_float "below" 0.0 (Stats.clamp ~lo:0.0 ~hi:1.0 (-5.0));
  check_float "above" 1.0 (Stats.clamp ~lo:0.0 ~hi:1.0 5.0);
  check_float "inside" 0.5 (Stats.clamp ~lo:0.0 ~hi:1.0 0.5);
  Alcotest.(check int) "clampi" 3 (Stats.clampi ~lo:0 ~hi:3 9)

let test_stats_running () =
  let r = Stats.running_create () in
  List.iter (Stats.running_add r) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.running_count r);
  check_float "mean" 2.5 (Stats.running_mean r);
  check_float "max" 4.0 (Stats.running_max r);
  Alcotest.(check bool) "stddev positive" true (Stats.running_stddev r > 1.0)

let test_table_render () =
  let t = Table.create ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_separator t;
  Table.add_row t [ "333" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "five lines" 5 (List.length lines);
  Alcotest.(check bool) "first row before separator" true
    (String.length (List.nth lines 2) > 0);
  Alcotest.(check string) "header first" "| a   | bb |" (List.hd lines)

let test_table_row_order () =
  let t = Table.create ~header:[ "x" ] in
  Table.add_row t [ "first" ];
  Table.add_row t [ "second" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  let row i = List.nth lines i in
  Alcotest.(check bool) "order kept" true
    (String.length (row 2) > 0
    && String.sub (row 2) 2 5 = "first"
    && String.sub (row 3) 2 6 = "second")

let test_table_too_many_cells () =
  let t = Table.create ~header:[ "only" ] in
  Alcotest.check_raises "overflow"
    (Invalid_argument "Table.add_row: more cells than headers") (fun () ->
      Table.add_row t [ "a"; "b" ])

(* Json parser *)

let parse_ok s =
  match Json.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let test_json_parse_scalars () =
  Alcotest.(check bool) "null" true (parse_ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (parse_ok "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (parse_ok " false " = Json.Bool false);
  Alcotest.(check bool) "int" true (parse_ok "42" = Json.Number 42.0);
  Alcotest.(check bool) "negative exponent" true
    (parse_ok "-2.5e2" = Json.Number (-250.0));
  Alcotest.(check bool) "string" true (parse_ok {|"hi"|} = Json.String "hi")

let test_json_parse_escapes () =
  Alcotest.(check bool) "standard escapes" true
    (parse_ok {|"a\n\t\"\\b"|} = Json.String "a\n\t\"\\b");
  Alcotest.(check bool) "\\uXXXX ascii" true
    (parse_ok {|"\u0041"|} = Json.String "A");
  (* U+00E9 (e-acute) must decode to two-byte UTF-8. *)
  Alcotest.(check bool) "\\uXXXX utf-8" true
    (parse_ok {|"\u00e9"|} = Json.String "\xc3\xa9")

let test_json_roundtrip () =
  let v =
    Json.Assoc
      [
        ("name", Json.String "sim.restore \"fast\"");
        ("ts", Json.Number 12.5);
        ("tags", Json.List [ Json.int 1; Json.Null; Json.Bool true ]);
        ("args", Json.Assoc [ ("depth", Json.int 3) ]);
      ]
  in
  Alcotest.(check bool) "emit |> parse is the identity" true
    (parse_ok (Json.to_string v) = v);
  Alcotest.(check bool) "pretty emit |> parse is the identity" true
    (parse_ok (Json.to_string_pretty v) = v);
  Alcotest.(check bool) "member finds a field" true
    (Json.member "ts" v = Some (Json.Number 12.5));
  Alcotest.(check bool) "member misses politely" true
    (Json.member "nope" v = None && Json.member "x" Json.Null = None)

let test_json_parse_errors () =
  let rejects s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
  in
  List.iter rejects
    [ "{"; "[1,]"; "{\"a\":}"; "12 tail"; ""; "'single'"; "{\"a\" 1}"; "nul" ]

let test_json_rejects_malformed_unicode_escapes () =
  let rejects s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
  in
  (* Regression: the hex digits were once parsed with [int_of_string]
     ("0x...."), which accepts OCaml underscore and sign syntax, so these
     all parsed instead of raising. *)
  List.iter rejects
    [
      {|"\u1_23"|};
      {|"\u-123"|};
      {|"\u+123"|};
      {|"\u00g1"|};
      {|"\u12"|};
      {|"\u"|};
      {|"\uxx41"|};
    ];
  (* Well-formed escapes still work, including a 3-byte code point. *)
  Alcotest.(check bool) "valid escapes unaffected" true
    (parse_ok {|"\u0041\u00e9\u20ac"|} = Json.String "A\xc3\xa9\xe2\x82\xac")

(* Trace *)

let noop () = ()

let test_trace_disabled_no_alloc () =
  Trace.set_enabled false;
  Trace.reset ();
  let n = 10_000 in
  Trace.span "warmup" noop;
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    Trace.span "off" noop
  done;
  let w1 = Gc.minor_words () in
  (* [Gc.minor_words] itself boxes its result, hence the small slack. *)
  Alcotest.(check bool) "disabled span allocates nothing" true
    (w1 -. w0 < 64.0);
  let w2 = Gc.minor_words () in
  for _ = 1 to n do
    Trace.end_span (Trace.begin_span "off")
  done;
  let w3 = Gc.minor_words () in
  Alcotest.(check bool) "disabled begin/end allocates nothing" true
    (w3 -. w2 < 64.0);
  Alcotest.(check int) "nothing was recorded" 0 (Trace.event_count ())

let test_trace_chrome_roundtrip () =
  Trace.reset ();
  Trace.set_enabled true;
  Trace.span "outer" (fun () ->
      Trace.span ~cat:"sim" "inner" noop;
      Trace.counter "pool.queue_depth" 3.0;
      Trace.instant ~cat:"campaign" "finding");
  Trace.set_enabled false;
  Alcotest.(check int) "four events buffered" 4 (Trace.event_count ());
  let text = Json.to_string (Trace.to_chrome_json ()) in
  let parsed = parse_ok text in
  let events =
    match Json.member "traceEvents" parsed with
    | Some (Json.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let field k ev = Json.member k ev in
  let named name ph =
    List.exists
      (fun ev ->
        field "name" ev = Some (Json.String name)
        && field "ph" ev = Some (Json.String ph))
      events
  in
  Alcotest.(check bool) "outer span" true (named "outer" "X");
  Alcotest.(check bool) "inner span" true (named "inner" "X");
  Alcotest.(check bool) "counter" true (named "pool.queue_depth" "C");
  Alcotest.(check bool) "instant" true (named "finding" "i");
  List.iter
    (fun ev ->
      if field "ph" ev = Some (Json.String "X") then begin
        (match field "ts" ev with
        | Some (Json.Number ts) ->
          Alcotest.(check bool) "ts non-negative" true (ts >= 0.0)
        | _ -> Alcotest.fail "span without numeric ts");
        match field "dur" ev with
        | Some (Json.Number d) ->
          Alcotest.(check bool) "dur non-negative" true (d >= 0.0)
        | _ -> Alcotest.fail "span without numeric dur"
      end)
    events;
  Trace.reset ()

let test_trace_summary () =
  Trace.reset ();
  Trace.set_enabled true;
  Trace.span "outer" (fun () -> Trace.span "inner" noop);
  Trace.span "outer" noop;
  Trace.set_enabled false;
  let rows = Trace.summary () in
  let row name =
    match List.find_opt (fun r -> r.Trace.span_name = name) rows with
    | Some r -> r
    | None -> Alcotest.failf "no summary row for %s" name
  in
  Alcotest.(check int) "outer counted twice" 2 (row "outer").Trace.count;
  Alcotest.(check int) "inner counted once" 1 (row "inner").Trace.count;
  Alcotest.(check bool) "nested total bounded by parent" true
    ((row "inner").Trace.total_s <= (row "outer").Trace.total_s);
  Alcotest.(check bool) "wall covers the outer spans" true
    (Trace.wall_s () >= (row "outer").Trace.max_s);
  (* Spans that raise are still recorded. *)
  (try Trace.set_enabled true; Trace.span "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  Trace.set_enabled false;
  Alcotest.(check bool) "raising span recorded" true
    (List.exists
       (fun r -> r.Trace.span_name = "boom")
       (Trace.summary ()));
  Trace.reset ();
  Alcotest.(check int) "reset drops everything" 0 (Trace.event_count ())

let test_trace_env () =
  (* No process-global env mutation: just the unset default. *)
  Alcotest.(check bool) "unset means disabled" false
    (Trace.enabled_by_env ~var:"AVIS_TEST_SURELY_UNSET_TRACE" ())

(* Env: the shared warn-and-fall-back parser behind every AVIS_* knob. *)

let with_env var value f =
  Unix.putenv var value;
  Fun.protect ~finally:(fun () -> Unix.putenv var "") (fun () -> f ())

(* putenv cannot truly unset; use a fresh name per case for the unset
   arm and treat "" as a set-but-malformed value (which it is). *)
let test_env_positive_int () =
  Alcotest.(check int) "unset -> default" 7
    (Env.positive_int ~var:"AVIS_TEST_ENV_UNSET_INT" ~default:7 ());
  with_env "AVIS_TEST_ENV_INT" " 12 " (fun () ->
      Alcotest.(check int) "trimmed value wins" 12
        (Env.positive_int ~var:"AVIS_TEST_ENV_INT" ~default:7 ()));
  List.iter
    (fun bad ->
      with_env "AVIS_TEST_ENV_INT" bad (fun () ->
          Alcotest.(check int)
            (Printf.sprintf "%S falls back" bad)
            7
            (Env.positive_int ~var:"AVIS_TEST_ENV_INT" ~default:7 ())))
    [ "0"; "-3"; "four"; "4.5"; "" ]

let test_env_positive_float () =
  Alcotest.(check (float 0.0)) "unset -> default" 7200.0
    (Env.positive_float ~var:"AVIS_TEST_ENV_UNSET_FLOAT" ~default:7200.0 ());
  with_env "AVIS_TEST_ENV_FLOAT" "30.5" (fun () ->
      Alcotest.(check (float 0.0)) "value wins" 30.5
        (Env.positive_float ~var:"AVIS_TEST_ENV_FLOAT" ~default:7200.0 ()));
  List.iter
    (fun bad ->
      with_env "AVIS_TEST_ENV_FLOAT" bad (fun () ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%S falls back" bad)
            7200.0
            (Env.positive_float ~var:"AVIS_TEST_ENV_FLOAT" ~default:7200.0 ())))
    [ "0"; "-1.5"; "nan"; "soon"; "" ]

let test_env_flag () =
  Alcotest.(check bool) "unset -> default false" false
    (Env.flag ~var:"AVIS_TEST_ENV_UNSET_FLAG" ());
  Alcotest.(check bool) "unset -> default true" true
    (Env.flag ~default:true ~var:"AVIS_TEST_ENV_UNSET_FLAG2" ());
  List.iter
    (fun (v, expect) ->
      with_env "AVIS_TEST_ENV_FLAG" v (fun () ->
          Alcotest.(check bool)
            (Printf.sprintf "%S" v)
            expect
            (Env.flag ~var:"AVIS_TEST_ENV_FLAG" ())))
    [ ("1", true); ("ON", true); ("Yes", true); ("0", false); ("off", false) ];
  (* A typo no longer silently counts as "on": it warns and keeps the
     default, like every other knob. *)
  with_env "AVIS_TEST_ENV_FLAG" "tru" (fun () ->
      Alcotest.(check bool) "malformed falls back to default" true
        (Env.flag ~default:true ~var:"AVIS_TEST_ENV_FLAG" ()))

(* Metrics: the key=value line protocol and its parse_line inverse. *)

let sample_snapshot cell =
  {
    Metrics.cell; simulations = 41; inferences = 3; spent_s = 612.0;
    budget_s = 7200.0; findings = 2; wall_s = 0.8; minor_words = 12.5e6;
    major_collections = 2; store_hits = 5; store_misses = 1;
    store_bytes = 123456;
  }

let test_metrics_line_escapes_cell () =
  (* Regression: an unescaped space or '=' in the cell label used to
     corrupt the key=value framing of the whole line. *)
  let s = sample_snapshot "avis/apm/auto box=v2" in
  let text = Metrics.line ~event:"progress" s in
  Alcotest.(check bool) "no raw space in the cell field" false
    (String.split_on_char ' ' text
    |> List.exists (fun tok -> tok = "box=v2"));
  match Metrics.parse_line text with
  | Error e -> Alcotest.failf "parse_line failed: %s" e
  | Ok (event, parsed, tags) ->
    Alcotest.(check string) "event" "progress" event;
    Alcotest.(check string) "cell exact" s.Metrics.cell parsed.Metrics.cell;
    Alcotest.(check (list (pair string string))) "no tags" [] tags

let test_metrics_line_tags () =
  let s = sample_snapshot "avis/apm/auto-box" in
  let tags = [ ("req", "r-12"); ("shard", "0") ] in
  let text = Metrics.line ~tags ~event:"progress" s in
  match Metrics.parse_line text with
  | Error e -> Alcotest.failf "parse_line failed: %s" e
  | Ok (_, _, parsed_tags) ->
    Alcotest.(check (list (pair string string))) "tags round-trip" tags
      parsed_tags

let test_metrics_parse_rejects () =
  List.iter
    (fun bad ->
      match Metrics.parse_line bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parse_line %S unexpectedly succeeded" bad)
    [
      "event=progress cell=x";  (* no [avis] prefix *)
      "[avis] event=progress";  (* missing fields *)
      "[avis] event=progress cell=x sims=many infs=0 spent_s=0.0 \
       budget_s=0.0 findings=0 wall_s=0.0 minor_mw=0.00 majors=0 store_h=0 \
       store_m=0 store_b=0";  (* non-numeric count *)
      "[avis] event=progress cell=bad%GG sims=0 infs=0 spent_s=0.0 \
       budget_s=0.0 findings=0 wall_s=0.0 minor_mw=0.00 majors=0 store_h=0 \
       store_m=0 store_b=0";  (* malformed escape *)
    ]

(* Any cell label and tag value — spaces, '=', '%', newlines, whatever —
   must survive line/parse_line exactly, and re-rendering the parsed
   snapshot must reproduce the line byte for byte (numeric fields are
   generated on the rendering grid so the fixed-point formats are
   lossless). *)
let test_metrics_roundtrip_qcheck =
  let snapshot_gen =
    QCheck.Gen.(
      let* cell = string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 30) in
      let* simulations = int_bound 10_000 in
      let* inferences = int_bound 10_000 in
      let* spent_d = int_bound 100_000 in
      let* budget_d = int_bound 100_000 in
      let* findings = int_bound 100 in
      let* wall_d = int_bound 10_000 in
      let* minor_cw = int_bound 1_000_000 in
      let* major_collections = int_bound 50 in
      let* store_hits = int_bound 1000 in
      let* store_misses = int_bound 1000 in
      let* store_bytes = int_bound 1_000_000_000 in
      let* tag = string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 12) in
      return
        ( {
            Metrics.cell;
            simulations;
            inferences;
            spent_s = float_of_int spent_d /. 10.0;
            budget_s = float_of_int budget_d /. 10.0;
            findings;
            wall_s = float_of_int wall_d /. 10.0;
            minor_words = float_of_int minor_cw /. 100.0 *. 1e6;
            major_collections;
            store_hits;
            store_misses;
            store_bytes;
          },
          tag ))
  in
  QCheck.Test.make ~count:500
    ~name:"metrics line/parse_line round-trips any cell label"
    (QCheck.make snapshot_gen)
    (fun (s, tag) ->
      let tags = [ ("req", tag) ] in
      let text = Metrics.line ~tags ~event:"progress" s in
      match Metrics.parse_line text with
      | Error e -> QCheck.Test.fail_reportf "parse_line failed: %s" e
      | Ok (event, parsed, parsed_tags) ->
        if event <> "progress" then QCheck.Test.fail_report "event mismatch";
        if parsed.Metrics.cell <> s.Metrics.cell then
          QCheck.Test.fail_reportf "cell mismatch: %S <> %S"
            parsed.Metrics.cell s.Metrics.cell;
        if parsed_tags <> tags then QCheck.Test.fail_report "tag mismatch";
        let reprinted = Metrics.line ~tags:parsed_tags ~event parsed in
        if reprinted <> text then
          QCheck.Test.fail_reportf "re-render differs:\n%s\n%s" text reprinted;
        true)

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "avis_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects 0" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "choose empty" `Quick test_rng_choose_empty;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min_max" `Quick test_stats_min_max;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "clamp" `Quick test_stats_clamp;
          Alcotest.test_case "running" `Quick test_stats_running;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "row order" `Quick test_table_row_order;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
        ] );
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_parse_scalars;
          Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_parse_errors;
          Alcotest.test_case "malformed \\u escapes" `Quick
            test_json_rejects_malformed_unicode_escapes;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled costs nothing" `Quick
            test_trace_disabled_no_alloc;
          Alcotest.test_case "chrome round-trip" `Quick
            test_trace_chrome_roundtrip;
          Alcotest.test_case "summary" `Quick test_trace_summary;
          Alcotest.test_case "env gate" `Quick test_trace_env;
        ] );
      ( "env",
        [
          Alcotest.test_case "positive int" `Quick test_env_positive_int;
          Alcotest.test_case "positive float" `Quick test_env_positive_float;
          Alcotest.test_case "flag" `Quick test_env_flag;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "cell escaping" `Quick
            test_metrics_line_escapes_cell;
          Alcotest.test_case "tags" `Quick test_metrics_line_tags;
          Alcotest.test_case "parse rejects" `Quick test_metrics_parse_rejects;
          q test_metrics_roundtrip_qcheck;
        ] );
    ]
