(* Tests for avis_sitl: trace recording/padding and the simulation
   harness (provisioning, determinism, the step loop, outcomes). *)

open Avis_geo
open Avis_sitl
open Avis_core

let test_trace_records_at_period () =
  let trace = Trace.create ~period:0.1 () in
  let world = Avis_physics.World.create () in
  for i = 1 to 100 do
    Trace.record trace ~steps:i ~dt:0.01 world ~mode:"Pre-Flight"
  done;
  (* 1 s at 10 Hz -> about 10 samples. *)
  Alcotest.(check bool) "about ten samples" true
    (Trace.length trace >= 9 && Trace.length trace <= 11)

let test_trace_padding () =
  let trace = Trace.create ~period:0.1 () in
  let world = Avis_physics.World.create () in
  Trace.record trace ~steps:0 ~dt:0.01 world ~mode:"A";
  Trace.record trace ~steps:20 ~dt:0.01 world ~mode:"B";
  let last = Trace.nth_padded trace 100 in
  Alcotest.(check string) "padded with final" "B" last.Trace.mode;
  Alcotest.check_raises "nth out of range" (Invalid_argument "Trace.nth: out of range")
    (fun () -> ignore (Trace.nth trace 100))

let test_trace_empty_padding () =
  let trace = Trace.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Trace.nth_padded: empty trace")
    (fun () -> ignore (Trace.nth_padded trace 0))

(* Record every step (period 0) so the indices below are exact. *)
let recorded_trace n =
  let trace = Trace.create ~period:0.0 () in
  let world = Avis_physics.World.create () in
  for i = 1 to n do
    Trace.record trace ~steps:i ~dt:0.01 world
      ~mode:(if i mod 2 = 0 then "Even" else "Odd")
  done;
  trace

(* The columnar store freezes a chunk every 256 records; indices around
   that boundary are where an off-by-one in the chunk arithmetic would
   land. *)
let test_trace_chunk_boundaries () =
  let n = 600 in
  let trace = recorded_trace n in
  Alcotest.(check int) "every record kept" n (Trace.length trace);
  List.iter
    (fun i ->
      let s = Trace.nth trace i in
      let expected = float_of_int (i + 1) *. 0.01 in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "time at %d" i)
        expected s.Trace.time;
      Alcotest.(check string)
        (Printf.sprintf "mode at %d" i)
        (if (i + 1) mod 2 = 0 then "Even" else "Odd")
        s.Trace.mode)
    [ 0; 1; 254; 255; 256; 257; 511; 512; n - 1 ]

(* A snapshot must be isolated from the live trace in both directions:
   recording into the original must not leak into the snapshot's shared
   chunks, and restoring must rewind the length. *)
let test_trace_snapshot_isolation () =
  let trace = recorded_trace 300 in
  let snap = Trace.snapshot trace in
  let world = Avis_physics.World.create () in
  for i = 301 to 700 do
    Trace.record trace ~steps:i ~dt:0.01 world ~mode:"After"
  done;
  let restored = Trace.restore snap in
  Alcotest.(check int) "snapshot length preserved" 300 (Trace.length restored);
  Alcotest.(check string) "tail record untouched" "Even"
    (Trace.nth restored 299).Trace.mode;
  Alcotest.(check string) "original kept recording" "After"
    (Trace.nth trace 699).Trace.mode;
  (* And the restored copy can diverge without disturbing the original. *)
  Trace.record restored ~steps:301 ~dt:0.01 world ~mode:"Fork";
  Alcotest.(check string) "fork stays local" "Fork"
    (Trace.nth restored 300).Trace.mode;
  Alcotest.(check string) "original unaffected" "After"
    (Trace.nth trace 300).Trace.mode

(* [length] is O(1) state, not a walk: reading it — warm, on a trace of
   any shape — must not allocate at all. *)
let test_trace_length_allocation_free () =
  let trace = recorded_trace 700 in
  let acc = ref 0 in
  for _ = 1 to 100 do
    acc := !acc + Trace.length trace
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    acc := !acc + Trace.length trace
  done;
  let allocated = Gc.minor_words () -. w0 in
  Alcotest.(check int) "length stable" (700 * 1100) !acc;
  if allocated > 0.0 then
    Alcotest.failf "Trace.length allocated %.0f minor words over 1000 calls"
      allocated

let test_sim_time_advances () =
  let sim = Sim.create (Sim.default_config Avis_firmware.Policy.apm) in
  for _ = 1 to 250 do
    Sim.step sim
  done;
  Alcotest.(check (float 1e-9)) "one second" 1.0 (Sim.time sim);
  Alcotest.(check int) "250 steps" 250 (Sim.steps sim)

let test_sim_duration_cap () =
  let config = { (Sim.default_config Avis_firmware.Policy.apm) with Sim.max_duration = 0.5 } in
  let sim = Sim.create config in
  let reached = Sim.run_until sim (fun s -> Sim.time s > 100.0) in
  Alcotest.(check bool) "predicate not reached" false reached;
  Alcotest.(check bool) "finished at cap" true (Sim.finished sim)

let run_quickstart seed =
  let config =
    { (Sim.default_config Avis_firmware.Policy.apm) with
      Sim.seed; max_duration = 75.0 }
  in
  let sim = Sim.create config in
  let passed = Workload.execute Workload.quickstart sim in
  Sim.outcome sim ~workload_passed:passed

let test_sim_quickstart_passes () =
  let o = run_quickstart 0 in
  Alcotest.(check bool) "passed" true o.Sim.workload_passed;
  Alcotest.(check bool) "no crash" true (o.Sim.crash = None);
  Alcotest.(check bool) "transitions recorded" true (List.length o.Sim.transitions >= 3)

let test_sim_determinism () =
  let a = run_quickstart 3 and b = run_quickstart 3 in
  Alcotest.(check int) "same trace length" (Trace.length a.Sim.trace)
    (Trace.length b.Sim.trace);
  let sa = Trace.samples a.Sim.trace and sb = Trace.samples b.Sim.trace in
  Array.iteri
    (fun i s ->
      Alcotest.(check bool) "same positions" true
        (Vec3.equal_eps ~eps:1e-12 s.Trace.position sb.(i).Trace.position))
    sa

let test_sim_seed_changes_trace () =
  let a = run_quickstart 1 and b = run_quickstart 2 in
  let sa = Trace.samples a.Sim.trace and sb = Trace.samples b.Sim.trace in
  let n = min (Array.length sa) (Array.length sb) in
  let differs = ref false in
  for i = 0 to n - 1 do
    if not (Vec3.equal_eps ~eps:1e-9 sa.(i).Trace.position sb.(i).Trace.position)
    then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_sim_sensor_read_rate () =
  (* The paper's premise: thousands of injection sites per second. *)
  let o = run_quickstart 0 in
  let rate = float_of_int o.Sim.sensor_reads /. o.Sim.duration in
  Alcotest.(check bool) "hundreds of reads per second" true (rate > 400.0)

let test_sim_crash_freezes () =
  (* Injecting a whole-kind gyro failure mid-climb crashes the vehicle and
     freezes the world. *)
  let plan =
    List.init 2 (fun index ->
        { Avis_hinj.Hinj.sensor =
            { Avis_sensors.Sensor.kind = Avis_sensors.Sensor.Gyroscope; index };
          at = 6.0 })
  in
  let config =
    { (Sim.default_config Avis_firmware.Policy.apm) with Sim.max_duration = 75.0 }
  in
  let sim = Sim.create ~plan config in
  let passed = Workload.execute Workload.quickstart sim in
  let o = Sim.outcome sim ~workload_passed:passed in
  Alcotest.(check bool) "did not pass" false o.Sim.workload_passed;
  Alcotest.(check bool) "crashed" true (o.Sim.crash <> None)

let test_outcome_triggered_bugs_clean () =
  let o = run_quickstart 0 in
  Alcotest.(check bool) "no flawed paths in clean flight" true
    (o.Sim.triggered_bugs = [])

let () =
  Alcotest.run "avis_sitl"
    [
      ( "trace",
        [
          Alcotest.test_case "records at period" `Quick test_trace_records_at_period;
          Alcotest.test_case "padding" `Quick test_trace_padding;
          Alcotest.test_case "empty padding" `Quick test_trace_empty_padding;
          Alcotest.test_case "chunk boundaries" `Quick test_trace_chunk_boundaries;
          Alcotest.test_case "snapshot isolation" `Quick test_trace_snapshot_isolation;
          Alcotest.test_case "length allocation-free" `Quick
            test_trace_length_allocation_free;
        ] );
      ( "sim",
        [
          Alcotest.test_case "time advances" `Quick test_sim_time_advances;
          Alcotest.test_case "duration cap" `Quick test_sim_duration_cap;
          Alcotest.test_case "quickstart passes" `Quick test_sim_quickstart_passes;
          Alcotest.test_case "deterministic" `Quick test_sim_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_sim_seed_changes_trace;
          Alcotest.test_case "sensor read rate" `Quick test_sim_sensor_read_rate;
          Alcotest.test_case "crash freezes" `Quick test_sim_crash_freezes;
          Alcotest.test_case "clean run triggers nothing" `Quick test_outcome_triggered_bugs_clean;
        ] );
    ]
