(* Tests for avis_physics: airframe constants, motor dynamics, rigid-body
   integration, the environment and the world's contact model. *)

open Avis_geo
open Avis_physics

let frame = Airframe.iris
let hover = Airframe.hover_throttle frame

let step_world world commands seconds =
  let dt = 0.004 in
  let steps = int_of_float (seconds /. dt) in
  let last = ref None in
  for _ = 1 to steps do
    match World.step world ~motor_commands:commands ~dt with
    | Some e -> last := Some e
    | None -> ()
  done;
  !last

let test_hover_throttle () =
  Alcotest.(check bool) "between 0.3 and 0.6" true (hover > 0.3 && hover < 0.6);
  let total = Airframe.max_total_thrust_n frame *. hover in
  Alcotest.(check (float 1e-6)) "balances weight" (frame.Airframe.mass_kg *. Airframe.gravity) total

let test_motor_lag () =
  let motors = Motor.create frame in
  Motor.command motors (Array.make 4 1.0);
  Motor.step motors 0.004;
  let early = Motor.total_thrust motors in
  Alcotest.(check bool) "thrust builds gradually" true
    (early > 0.0 && early < Airframe.max_total_thrust_n frame /. 2.0);
  for _ = 1 to 200 do
    Motor.step motors 0.004
  done;
  Alcotest.(check bool) "converges to max" true
    (Motor.total_thrust motors > 0.99 *. Airframe.max_total_thrust_n frame)

let test_motor_command_clamped () =
  let motors = Motor.create frame in
  Motor.command motors [| 2.0; -1.0; 0.5; 0.5 |];
  for _ = 1 to 500 do
    Motor.step motors 0.004
  done;
  let th = Motor.thrusts motors in
  Alcotest.(check bool) "clamped to [0,max]" true
    (th.(0) <= frame.Airframe.max_thrust_per_motor_n +. 1e-6 && th.(1) <= 1e-6)

let test_motor_wrong_count () =
  let motors = Motor.create frame in
  Alcotest.check_raises "wrong count"
    (Invalid_argument "Motor.command: wrong motor count") (fun () ->
      Motor.command motors [| 1.0 |])

let test_roll_torque_sign () =
  (* More thrust on the +y (left) motors must produce +x (roll) torque. *)
  let motors = Motor.create frame in
  let layout = Motor.mix_layout frame in
  let commands =
    Array.map (fun (pos, _) -> if pos.Vec3.y > 0.0 then 0.8 else 0.2) layout
  in
  Motor.command motors commands;
  for _ = 1 to 100 do
    Motor.step motors 0.004
  done;
  let torque =
    Motor.body_torque motors ~rate:Vec3.zero ~airspeed_body:Vec3.zero
  in
  Alcotest.(check bool) "+roll" true (torque.Vec3.x > 0.01);
  Alcotest.(check bool) "no pitch" true (Float.abs torque.Vec3.y < 1e-6)

let test_flapping_damps_rates () =
  let motors = Motor.create frame in
  Motor.command motors (Array.make 4 hover);
  for _ = 1 to 200 do
    Motor.step motors 0.004
  done;
  let torque =
    Motor.body_torque motors ~rate:(Vec3.make 1.0 0.0 0.0)
      ~airspeed_body:Vec3.zero
  in
  Alcotest.(check bool) "opposes roll rate" true (torque.Vec3.x < -0.01)

let test_free_fall () =
  let body = Rigid_body.create ~position:(Vec3.make 0.0 0.0 100.0) () in
  let dt = 0.004 in
  let force =
    Vec3.Mut.of_t (Vec3.make 0.0 0.0 (-.frame.Airframe.mass_kg *. Airframe.gravity))
  in
  let torque = Vec3.Mut.create () in
  for _ = 1 to 250 do
    Rigid_body.step body ~inertia:frame.Airframe.inertia
      ~mass:frame.Airframe.mass_kg ~force ~torque ~dt
  done;
  (* After 1 s of free fall: v = -g, z ≈ 100 - g/2. *)
  Alcotest.(check bool) "velocity" true
    (Float.abs (body.Rigid_body.velocity.Vec3.Mut.z +. Airframe.gravity) < 0.1);
  Alcotest.(check bool) "position" true
    (Float.abs
       (body.Rigid_body.position.Vec3.Mut.z -. (100.0 -. (Airframe.gravity /. 2.0)))
    < 0.5)

let test_specific_force_at_rest () =
  let body = Rigid_body.create () in
  (* At rest (zero net acceleration) the accelerometer reads +g along z. *)
  let f = Rigid_body.specific_force_body body in
  Alcotest.(check bool) "reads +g" true (Float.abs (f.Vec3.z -. Airframe.gravity) < 1e-6)

let test_world_hover_stays () =
  let world = World.create ~position:(Vec3.make 0.0 0.0 10.0) () in
  ignore (step_world world (Array.make 4 hover) 3.0);
  let b = World.body world in
  Alcotest.(check bool) "altitude held within 2 m" true
    (Float.abs (b.Rigid_body.position.Vec3.Mut.z -. 10.0) < 2.0);
  Alcotest.(check bool) "no crash" true (not (World.crashed world))

let test_world_hard_impact () =
  let world = World.create ~position:(Vec3.make 0.0 0.0 15.0) () in
  let event = step_world world (Array.make 4 0.0) 5.0 in
  (match event with
  | Some (World.Ground_impact { speed }) ->
    Alcotest.(check bool) "fast impact" true (speed > 10.0)
  | _ -> Alcotest.fail "expected a ground impact");
  Alcotest.(check bool) "latched" true (World.crashed world)

let test_world_gentle_touchdown () =
  let world = World.create ~position:(Vec3.make 0.0 0.0 0.3) () in
  (* Slightly under hover: settles gently. *)
  ignore (step_world world (Array.make 4 (hover *. 0.9)) 3.0);
  Alcotest.(check bool) "no crash" true (not (World.crashed world));
  Alcotest.(check bool) "on ground" true (World.on_ground world)

let test_world_frozen_after_crash () =
  let world = World.create ~position:(Vec3.make 0.0 0.0 15.0) () in
  ignore (step_world world (Array.make 4 0.0) 5.0);
  let pos = Rigid_body.position_v (World.body world) in
  ignore (step_world world (Array.make 4 1.0) 1.0);
  Alcotest.(check bool) "position frozen" true
    (Vec3.equal_eps pos (Rigid_body.position_v (World.body world)))

let test_environment_obstacle () =
  let env =
    Environment.create
      ~obstacles:
        [ { Environment.centre = Vec3.make 5.0 0.0 5.0;
            half_extents = Vec3.make 1.0 1.0 5.0; label = "tree" } ]
      ()
  in
  Alcotest.(check bool) "inside detected" true
    (Environment.inside_obstacle env (Vec3.make 5.5 0.5 3.0) <> None);
  Alcotest.(check bool) "outside clear" true
    (Environment.inside_obstacle env (Vec3.make 8.0 0.0 3.0) = None)

let test_environment_fence () =
  let env =
    Environment.create
      ~fence:(Some { Environment.centre_xy = Vec3.zero; radius_m = 30.0; max_alt_m = 50.0 })
      ()
  in
  Alcotest.(check bool) "inside ok" true
    (not (Environment.breaches_fence env (Vec3.make 10.0 10.0 20.0)));
  Alcotest.(check bool) "radius breach" true
    (Environment.breaches_fence env (Vec3.make 40.0 0.0 20.0));
  Alcotest.(check bool) "altitude breach" true
    (Environment.breaches_fence env (Vec3.make 0.0 0.0 60.0))

let test_wind_calm_is_zero () =
  let env = Environment.benign () in
  let rng = Avis_util.Rng.create 0 in
  Alcotest.(check bool) "calm" true
    (Vec3.equal_eps (Environment.wind_at env rng 0.004) Vec3.zero)

let test_wind_gusts_bounded () =
  let env =
    Environment.create
      ~wind:(Some { Environment.steady = Vec3.make 3.0 0.0 0.0;
                    gust_stddev = 1.0; gust_correlation_s = 1.0 })
      ()
  in
  let rng = Avis_util.Rng.create 5 in
  let max_seen = ref 0.0 in
  for _ = 1 to 5000 do
    let w = Environment.wind_at env rng 0.004 in
    max_seen := Float.max !max_seen (Vec3.norm w)
  done;
  Alcotest.(check bool) "bounded" true (!max_seen < 12.0);
  Alcotest.(check bool) "nonzero" true (!max_seen > 2.0)

let test_fence_breach_latched () =
  let env =
    Environment.create
      ~fence:(Some { Environment.centre_xy = Vec3.zero; radius_m = 1.0; max_alt_m = 50.0 })
      ()
  in
  let world = World.create ~environment:env ~position:(Vec3.make 5.0 0.0 1.0) () in
  ignore (step_world world (Array.make 4 hover) 0.1);
  Alcotest.(check bool) "breached" true (World.fence_breached world)

(* The optimised step and the allocating reference step must be
   interchangeable bit for bit, over a profile that exercises ground
   contact, climb, asymmetric thrust and descent, in calm and windy air. *)

let fingerprint w =
  let b = World.body w in
  let p = Rigid_body.position_v b
  and v = Rigid_body.velocity_v b
  and q = Rigid_body.attitude_q b
  and o = Rigid_body.angular_velocity_v b in
  List.map Int64.bits_of_float
    [ p.Vec3.x; p.y; p.z; v.x; v.y; v.z; q.Quat.w; q.Quat.x; q.Quat.y;
      q.Quat.z; o.Vec3.x; o.y; o.z; World.time w ]

let flight_profile i =
  if i < 200 then Array.make 4 (hover *. 1.2)
  else if i < 1200 then [| hover *. 1.02; hover *. 0.98; hover; hover |]
  else Array.make 4 (hover *. 0.9)

let fly stepf ~windy =
  let environment =
    if windy then
      Environment.create
        ~wind:
          (Some
             { Environment.steady = Vec3.make 3.0 1.0 0.0;
               gust_stddev = 1.0; gust_correlation_s = 1.0 })
        ()
    else Environment.benign ()
  in
  let w = World.create ~environment ~rng:(Avis_util.Rng.create 7) () in
  for i = 0 to 2999 do
    ignore (stepf w ~motor_commands:(flight_profile i) ~dt:0.004)
  done;
  fingerprint w

let test_step_matches_reference () =
  List.iter
    (fun windy ->
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical flight (windy=%b)" windy)
        true
        (fly World.step ~windy = fly World.step_reference ~windy))
    [ false; true ]

(* The zero-allocation contract: once warm, the full kernel — physics
   step, sensor tick, trace record — must not allocate on the minor heap
   in steady flight. The 64-word slack absorbs the trace's occasional
   chunk-directory growth (a few pointer words every 256 records); a
   single boxed float per step would show up as 2000 words. *)
let test_steady_step_allocation_free () =
  let w = World.create ~position:(Vec3.make 0.0 0.0 100.0) () in
  let suite = Avis_sensors.Suite.create ~rng:(Avis_util.Rng.create 1) () in
  let trace = Avis_sitl.Trace.create () in
  let cmds = Array.make 4 hover in
  let steps = ref 0 in
  let kernel () =
    ignore (World.step w ~motor_commands:cmds ~dt:0.004);
    Avis_sensors.Suite.tick suite w ~dt:0.004;
    incr steps;
    Avis_sitl.Trace.record trace ~steps:!steps ~dt:0.004 w ~mode:"Manual"
  in
  for _ = 1 to 2000 do kernel () done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do kernel () done;
  let allocated = Gc.minor_words () -. w0 in
  Alcotest.(check bool) "vehicle still flying" false (World.crashed w);
  if allocated >= 64.0 then
    Alcotest.failf "steady kernel allocated %.0f minor words over 1000 steps"
      allocated

let () =
  Alcotest.run "avis_physics"
    [
      ( "airframe+motor",
        [
          Alcotest.test_case "hover throttle" `Quick test_hover_throttle;
          Alcotest.test_case "motor lag" `Quick test_motor_lag;
          Alcotest.test_case "command clamped" `Quick test_motor_command_clamped;
          Alcotest.test_case "wrong motor count" `Quick test_motor_wrong_count;
          Alcotest.test_case "roll torque sign" `Quick test_roll_torque_sign;
          Alcotest.test_case "flapping damps" `Quick test_flapping_damps_rates;
        ] );
      ( "rigid body",
        [
          Alcotest.test_case "free fall" `Quick test_free_fall;
          Alcotest.test_case "specific force" `Quick test_specific_force_at_rest;
        ] );
      ( "world",
        [
          Alcotest.test_case "hover stays" `Quick test_world_hover_stays;
          Alcotest.test_case "hard impact" `Quick test_world_hard_impact;
          Alcotest.test_case "gentle touchdown" `Quick test_world_gentle_touchdown;
          Alcotest.test_case "frozen after crash" `Quick test_world_frozen_after_crash;
          Alcotest.test_case "fence breach latched" `Quick test_fence_breach_latched;
          Alcotest.test_case "step = reference step" `Quick
            test_step_matches_reference;
          Alcotest.test_case "steady step allocation-free" `Quick
            test_steady_step_allocation_free;
        ] );
      ( "environment",
        [
          Alcotest.test_case "obstacle" `Quick test_environment_obstacle;
          Alcotest.test_case "fence" `Quick test_environment_fence;
          Alcotest.test_case "calm wind" `Quick test_wind_calm_is_zero;
          Alcotest.test_case "gusts bounded" `Quick test_wind_gusts_bounded;
        ] );
    ]
