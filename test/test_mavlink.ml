(* Tests for avis_mavlink: checksum, payload codec, framing (including
   resynchronisation over garbage), the in-memory link, and the GCS-side
   mission-upload transaction. *)

open Avis_mavlink

(* Crc *)

let test_crc_known_properties () =
  (* X25 over the empty string is the seed. *)
  Alcotest.(check int) "empty" 0xFFFF (Crc.of_string "");
  (* Deterministic and byte-order sensitive. *)
  Alcotest.(check int) "stable" (Crc.of_string "hello") (Crc.of_string "hello");
  Alcotest.(check bool) "order matters" true
    (Crc.of_string "ab" <> Crc.of_string "ba")

let test_crc_incremental () =
  let whole = Crc.of_string "avis-checker" in
  let acc = Crc.accumulate_string (Crc.init ()) "avis-" in
  let acc = Crc.accumulate_string acc "checker" in
  Alcotest.(check int) "incremental equals one-shot" whole (Crc.value acc)

(* Buf *)

let test_buf_roundtrip () =
  let w = Buf.writer () in
  Buf.put_u8 w 0xAB;
  Buf.put_u16 w 0xBEEF;
  Buf.put_i32 w (-123456);
  Buf.put_f32 w 3.25;
  Buf.put_string w ~len:8 "hey";
  let r = Buf.reader (Buf.contents w) in
  Alcotest.(check int) "u8" 0xAB (Buf.get_u8 r);
  Alcotest.(check int) "u16" 0xBEEF (Buf.get_u16 r);
  Alcotest.(check int) "i32" (-123456) (Buf.get_i32 r);
  Alcotest.(check (float 1e-9)) "f32" 3.25 (Buf.get_f32 r);
  Alcotest.(check string) "string" "hey" (Buf.get_string r ~len:8);
  Alcotest.(check int) "drained" 0 (Buf.remaining r)

let test_buf_truncated () =
  let r = Buf.reader "\x01" in
  ignore (Buf.get_u8 r);
  Alcotest.check_raises "truncated" Buf.Truncated (fun () -> ignore (Buf.get_u8 r))

let prop_buf_i32_roundtrip =
  QCheck.Test.make ~name:"i32 roundtrip" ~count:500
    (QCheck.int_range (-0x40000000) 0x3FFFFFFF)
    (fun v ->
      let w = Buf.writer () in
      Buf.put_i32 w v;
      Buf.get_i32 (Buf.reader (Buf.contents w)) = v)

let prop_buf_f32_roundtrip =
  QCheck.Test.make ~name:"f32 roundtrip (single precision)" ~count:500
    (QCheck.float_range (-1e6) 1e6)
    (fun v ->
      let w = Buf.writer () in
      Buf.put_f32 w v;
      let back = Buf.get_f32 (Buf.reader (Buf.contents w)) in
      Float.abs (back -. v) <= Float.abs v *. 1e-6 +. 1e-6)

(* Messages + frames *)

let sample_messages =
  [
    Msg.Heartbeat { custom_mode = 101; armed = true; system_status = 4 };
    Msg.Sys_status { voltage_mv = 12400; battery_remaining = 87 };
    Msg.Set_mode { custom_mode = 3 };
    Msg.Mission_count { count = 6 };
    Msg.Mission_request { seq = 2 };
    Msg.Mission_item
      { seq = 1; command = Msg.cmd_waypoint; param1 = 0.0; x = 47.39; y = 8.54; z = 20.0 };
    Msg.Mission_ack { accepted = true };
    Msg.Mission_current { seq = 3 };
    Msg.Command_long
      { command = Msg.cmd_takeoff; param1 = 20.0; param2 = 0.0; param3 = 1.5; param4 = -2.0 };
    Msg.Command_ack { command = Msg.cmd_takeoff; accepted = false };
    Msg.Global_position
      { time_boot_ms = 123456; lat_e7 = 473977420; lon_e7 = 85455940;
        relative_alt_mm = 20345; vx_cm = -120; vy_cm = 55; vz_cm = 0;
        heading_cdeg = 27000 };
    Msg.Statustext { severity = Msg.Critical; text = "failsafe: battery" };
    Msg.Param_request_list;
    Msg.Param_value { name = "WPNAV_SPEED"; value = 4.5; index = 0; count = 6 };
    Msg.Param_set { name = "RTL_ALT"; value = 25.0 };
  ]

let roundtrip msg =
  let encoded = Frame.encode ~seq:7 ~sysid:1 ~compid:1 msg in
  let decoder = Frame.decoder () in
  match Frame.feed decoder encoded with
  | [ frame ] -> frame.Frame.message
  | _ -> Alcotest.fail "expected exactly one frame"

let test_frame_roundtrip_all () =
  List.iter
    (fun msg ->
      let back = roundtrip msg in
      Alcotest.(check string) "same description" (Msg.describe msg) (Msg.describe back);
      Alcotest.(check bool) "same payload" true
        (Msg.encode_payload msg = Msg.encode_payload back))
    sample_messages

let test_frame_metadata () =
  let encoded = Frame.encode ~seq:42 ~sysid:9 ~compid:3 (Msg.Mission_count { count = 1 }) in
  let decoder = Frame.decoder () in
  match Frame.feed decoder encoded with
  | [ frame ] ->
    Alcotest.(check int) "seq" 42 frame.Frame.seq;
    Alcotest.(check int) "sysid" 9 frame.Frame.sysid;
    Alcotest.(check int) "compid" 3 frame.Frame.compid
  | _ -> Alcotest.fail "one frame expected"

let test_decoder_resync_over_garbage () =
  let encoded = Frame.encode ~seq:1 ~sysid:1 ~compid:1 (Msg.Mission_request { seq = 4 }) in
  let decoder = Frame.decoder () in
  let frames = Frame.feed decoder ("garbage!!" ^ encoded ^ "trailing") in
  Alcotest.(check int) "one frame recovered" 1 (List.length frames)

let test_decoder_rejects_bad_crc () =
  let encoded = Frame.encode ~seq:1 ~sysid:1 ~compid:1 (Msg.Mission_request { seq = 4 }) in
  let corrupted = Bytes.of_string encoded in
  let last = Bytes.length corrupted - 1 in
  Bytes.set corrupted last (Char.chr (Char.code (Bytes.get corrupted last) lxor 0xFF));
  let decoder = Frame.decoder () in
  let frames = Frame.feed decoder (Bytes.to_string corrupted) in
  Alcotest.(check int) "dropped" 0 (List.length frames);
  Alcotest.(check bool) "counted" true (Frame.dropped decoder >= 1)

let test_decoder_handles_partial_feeds () =
  let encoded = Frame.encode ~seq:1 ~sysid:1 ~compid:1 (Msg.Set_mode { custom_mode = 6 }) in
  let decoder = Frame.decoder () in
  let mid = String.length encoded / 2 in
  let first = Frame.feed decoder (String.sub encoded 0 mid) in
  Alcotest.(check int) "nothing yet" 0 (List.length first);
  let rest = Frame.feed decoder (String.sub encoded mid (String.length encoded - mid)) in
  Alcotest.(check int) "completed" 1 (List.length rest)

(* The decoder must survive arbitrary line noise: any byte soup interleaved
   with real frames may desynchronise it temporarily, but it must never
   raise, and once clean traffic resumes it must recover. The zero-byte
   flush forces any half-parsed false header (a stray 0xFE in the noise
   with a large length byte) through its CRC check before the final frame
   arrives. *)
let prop_decoder_never_raises_and_resyncs =
  QCheck.Test.make ~name:"decoder survives noise and resyncs" ~count:300
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 0 40) (int_range 0 255))
        (int_range 1 16))
    (fun (noise, chunk) ->
      let noise = String.init (List.length noise)
          (fun i -> Char.chr (List.nth noise i)) in
      let final = Msg.Mission_current { seq = 9 } in
      let stream =
        noise ^ String.make 300 '\x00'
        ^ Frame.encode ~seq:5 ~sysid:1 ~compid:1 final
      in
      let decoder = Frame.decoder () in
      let frames = ref [] in
      let i = ref 0 in
      while !i < String.length stream do
        let n = min chunk (String.length stream - !i) in
        frames := !frames @ Frame.feed decoder (String.sub stream !i n);
        i := !i + n
      done;
      match List.rev !frames with
      | last :: _ -> last.Frame.message = final
      | [] -> false)

(* Between frames, garbage that cannot alias a frame start (no 0xFE) is
   always skipped cleanly: every framed message is recovered, in order. *)
let prop_decoder_recovers_between_garbage =
  let non_stx = QCheck.Gen.(map Char.chr (int_range 0 0xFD)) in
  QCheck.Test.make ~name:"frames recovered around garbage" ~count:300
    QCheck.(
      triple
        (string_gen_of_size (QCheck.Gen.int_range 0 30) non_stx)
        (string_gen_of_size (QCheck.Gen.int_range 0 30) non_stx)
        (int_range 1 16))
    (fun (g1, g2, chunk) ->
      let m1 = Msg.Mission_request { seq = 3 }
      and m2 = Msg.Set_mode { custom_mode = 6 } in
      let stream =
        g1
        ^ Frame.encode ~seq:1 ~sysid:1 ~compid:1 m1
        ^ g2
        ^ Frame.encode ~seq:2 ~sysid:1 ~compid:1 m2
      in
      let decoder = Frame.decoder () in
      let frames = ref [] in
      let i = ref 0 in
      while !i < String.length stream do
        let n = min chunk (String.length stream - !i) in
        frames := !frames @ Frame.feed decoder (String.sub stream !i n);
        i := !i + n
      done;
      List.map (fun f -> f.Frame.message) !frames = [ m1; m2 ])

let prop_frames_concatenate =
  QCheck.Test.make ~name:"concatenated frames all decode" ~count:100
    (QCheck.int_range 1 8)
    (fun n ->
      let msgs = List.init n (fun i -> Msg.Mission_request { seq = i }) in
      let stream =
        String.concat ""
          (List.mapi (fun i m -> Frame.encode ~seq:i ~sysid:1 ~compid:1 m) msgs)
      in
      let decoder = Frame.decoder () in
      List.length (Frame.feed decoder stream) = n)

(* Link *)

let test_link_delivery () =
  let link = Link.create () in
  Link.send link Link.Gcs_end "hello";
  Alcotest.(check string) "not yet delivered" "" (Link.receive link Link.Vehicle_end);
  Link.step link;
  Alcotest.(check string) "delivered next step" "hello" (Link.receive link Link.Vehicle_end);
  Alcotest.(check string) "only once" "" (Link.receive link Link.Vehicle_end)

let test_link_direction () =
  let link = Link.create () in
  Link.send link Link.Gcs_end "to-vehicle";
  Link.step link;
  Alcotest.(check string) "wrong end empty" "" (Link.receive link Link.Gcs_end);
  Alcotest.(check string) "right end" "to-vehicle" (Link.receive link Link.Vehicle_end)

let test_link_jitter_preserves_order () =
  let rng = Avis_util.Rng.create 3 in
  let link = Link.create ~jitter:(rng, 3) () in
  for i = 0 to 9 do
    Link.send link Link.Gcs_end (Printf.sprintf "%d;" i)
  done;
  for _ = 1 to 10 do
    Link.step link
  done;
  let received = Link.receive link Link.Vehicle_end in
  (* Order within the final drain must be the send order. *)
  let tokens = String.split_on_char ';' received |> List.filter (( <> ) "") in
  let sorted = List.sort compare (List.map int_of_string tokens) in
  Alcotest.(check (list int)) "all arrived in order" sorted
    (List.map int_of_string tokens)

(* Link faults *)

let drain_both link steps =
  let got = Buffer.create 64 in
  for _ = 1 to steps do
    Link.step link;
    Buffer.add_string got (Link.receive link Link.Vehicle_end)
  done;
  Buffer.contents got

let test_link_faults_deterministic () =
  let make () =
    Link.create
      ~faults:({ Link.drop = 0.3; corrupt = 0.2; duplicate = 0.2 },
               Avis_util.Rng.create 11)
      ()
  in
  let run link =
    for i = 0 to 19 do
      Link.send link Link.Gcs_end (Printf.sprintf "chunk-%02d;" i)
    done;
    (drain_both link 5, Link.dropped link, Link.corrupted link,
     Link.duplicated link)
  in
  let a = run (make ()) and b = run (make ()) in
  Alcotest.(check bool) "same seed, same degraded traffic" true (a = b);
  let _, dropped, corrupted, duplicated = a in
  Alcotest.(check bool) "faults actually fired" true
    (dropped > 0 && corrupted > 0 && duplicated > 0)

let test_link_drop_all () =
  let link =
    Link.create
      ~faults:({ Link.no_faults with Link.drop = 1.0 }, Avis_util.Rng.create 1)
      ()
  in
  Link.send link Link.Gcs_end "gone";
  Alcotest.(check string) "nothing arrives" "" (drain_both link 4);
  Alcotest.(check int) "counted" 1 (Link.dropped link)

let test_link_corrupt_same_length () =
  let link =
    Link.create
      ~faults:({ Link.no_faults with Link.corrupt = 1.0 }, Avis_util.Rng.create 2)
      ()
  in
  Link.send link Link.Gcs_end "payload";
  let got = drain_both link 4 in
  Alcotest.(check int) "same length" 7 (String.length got);
  Alcotest.(check bool) "one byte flipped" true (got <> "payload");
  Alcotest.(check int) "counted" 1 (Link.corrupted link)

let test_link_duplicate () =
  let link =
    Link.create
      ~faults:({ Link.no_faults with Link.duplicate = 1.0 }, Avis_util.Rng.create 3)
      ()
  in
  Link.send link Link.Gcs_end "twice;";
  Alcotest.(check string) "delivered twice" "twice;twice;" (drain_both link 4);
  Alcotest.(check int) "counted" 1 (Link.duplicated link)

let test_link_outage_window () =
  (* Outages are judged at send time: chunks sent inside the window vanish,
     chunks sent after it flow again. *)
  let link = Link.create ~outages:[ { Link.from_step = 0; until_step = 3 } ] () in
  Link.send link Link.Gcs_end "silenced";
  for _ = 1 to 3 do
    Link.step link
  done;
  Alcotest.(check string) "in-window chunk dropped" ""
    (Link.receive link Link.Vehicle_end);
  Link.send link Link.Gcs_end "audible";
  Link.step link;
  Alcotest.(check string) "post-window chunk delivered" "audible"
    (Link.receive link Link.Vehicle_end);
  Alcotest.(check int) "outage drop counted" 1 (Link.dropped link)

let test_link_snapshot_restores_fault_stream () =
  (* A probabilistic link forked mid-run must replay the identical fault
     decisions: both RNGs are part of the snapshot. *)
  let link =
    Link.create
      ~jitter:(Avis_util.Rng.create 4, 2)
      ~faults:({ Link.drop = 0.4; corrupt = 0.3; duplicate = 0.2 },
               Avis_util.Rng.create 5)
      ()
  in
  for i = 0 to 9 do
    Link.send link Link.Gcs_end (Printf.sprintf "pre-%d;" i)
  done;
  ignore (drain_both link 2);
  let snap = Link.snapshot link in
  let fork = Link.restore snap in
  let tail l =
    for i = 0 to 9 do
      Link.send l Link.Gcs_end (Printf.sprintf "post-%d;" i)
    done;
    (drain_both l 6, Link.dropped l, Link.corrupted l, Link.duplicated l)
  in
  Alcotest.(check bool) "fork replays the original's future" true
    (tail fork = tail link)

let test_link_restore_substitutes_outage () =
  (* The fork operation: same snapshot, different outage schedule. Traffic
     already in flight still arrives; only post-fork sends are silenced. *)
  let link = Link.create () in
  Link.send link Link.Gcs_end "inflight;";
  let snap = Link.snapshot link in
  let fork =
    Link.restore ~outages:[ { Link.from_step = 0; until_step = 1000 } ] snap
  in
  Link.send fork Link.Gcs_end "suppressed;";
  Alcotest.(check string) "in-flight survives, new send dropped" "inflight;"
    (drain_both fork 4)

(* GCS transaction *)

let vehicle_responder link =
  (* A scripted vehicle end: answers MISSION_COUNT with sequential
     MISSION_REQUESTs and a final ACK. *)
  let decoder = Frame.decoder () in
  let expected = ref 0 in
  let total = ref 0 in
  let send msg = Link.send link Link.Vehicle_end (Frame.encode ~seq:0 ~sysid:1 ~compid:1 msg) in
  fun () ->
    List.iter
      (fun frame ->
        match frame.Frame.message with
        | Msg.Mission_count { count } ->
          total := count;
          expected := 0;
          send (Msg.Mission_request { seq = 0 })
        | Msg.Mission_item { seq; _ } when seq = !expected ->
          incr expected;
          if !expected >= !total then send (Msg.Mission_ack { accepted = true })
          else send (Msg.Mission_request { seq = !expected })
        | _ -> ())
      (Frame.feed decoder (Link.receive link Link.Vehicle_end))

let test_gcs_mission_upload () =
  let link = Link.create () in
  let gcs = Gcs.create link in
  let responder = vehicle_responder link in
  let items =
    List.init 4 (fun seq ->
        { Msg.seq; command = Msg.cmd_waypoint; param1 = 0.0; x = 0.0; y = 0.0; z = 10.0 })
  in
  Gcs.start_mission_upload gcs items;
  let steps = ref 0 in
  while Gcs.upload_state gcs = Gcs.Upload_in_progress && !steps < 100 do
    Link.step link;
    responder ();
    ignore (Gcs.poll gcs);
    incr steps
  done;
  Alcotest.(check bool) "upload completed" true (Gcs.upload_state gcs = Gcs.Upload_done)

let test_gcs_upload_busy () =
  let link = Link.create () in
  let gcs = Gcs.create link in
  Gcs.start_mission_upload gcs
    [ { Msg.seq = 0; command = Msg.cmd_takeoff; param1 = 0.0; x = 0.0; y = 0.0; z = 5.0 } ];
  Alcotest.check_raises "busy"
    (Invalid_argument "Gcs.start_mission_upload: upload already in progress")
    (fun () -> Gcs.start_mission_upload gcs [])

let test_gcs_telemetry_cache () =
  let link = Link.create () in
  let gcs = Gcs.create link in
  let send msg = Link.send link Link.Vehicle_end (Frame.encode ~seq:0 ~sysid:1 ~compid:1 msg) in
  send (Msg.Heartbeat { custom_mode = 5; armed = true; system_status = 4 });
  send
    (Msg.Global_position
       { time_boot_ms = 1000; lat_e7 = 473977420; lon_e7 = 85455940;
         relative_alt_mm = 12500; vx_cm = 100; vy_cm = 0; vz_cm = -50;
         heading_cdeg = 9000 });
  Link.step link;
  ignore (Gcs.poll gcs);
  Alcotest.(check bool) "armed" true (Gcs.armed gcs);
  Alcotest.(check bool) "mode" true (Gcs.vehicle_mode gcs = Some 5);
  Alcotest.(check (float 1e-6)) "alt" 12.5 (Gcs.relative_alt gcs);
  Alcotest.(check (float 1e-4)) "heading" 90.0 (Gcs.heading_deg gcs)

let test_gcs_command_ack () =
  let link = Link.create () in
  let gcs = Gcs.create link in
  Gcs.send_command gcs ~command:400 ~param1:1.0 ();
  Alcotest.(check bool) "no ack yet" true (Gcs.command_ack gcs ~command:400 = None);
  Link.send link Link.Vehicle_end
    (Frame.encode ~seq:0 ~sysid:1 ~compid:1 (Msg.Command_ack { command = 400; accepted = true }));
  Link.step link;
  ignore (Gcs.poll gcs);
  Alcotest.(check bool) "acked" true (Gcs.command_ack gcs ~command:400 = Some true)

(* GCS retransmission: transactions over lossy and dead links *)

let test_gcs_upload_retries_after_loss () =
  (* The first MISSION_COUNT is swallowed by a brief outage; the upload
     must complete anyway via backoff retransmission. *)
  let link = Link.create ~outages:[ { Link.from_step = 0; until_step = 2 } ] () in
  let gcs = Gcs.create link in
  let responder = vehicle_responder link in
  let items =
    List.init 3 (fun seq ->
        { Msg.seq; command = Msg.cmd_waypoint; param1 = 0.0; x = 0.0; y = 0.0; z = 10.0 })
  in
  Gcs.start_mission_upload gcs items;
  let i = ref 0 in
  while Gcs.upload_state gcs = Gcs.Upload_in_progress && !i < 400 do
    incr i;
    ignore (Gcs.tick gcs ~time:(0.1 *. float_of_int !i));
    Link.step link;
    responder ()
  done;
  Alcotest.(check bool) "count was lost" true (Link.dropped link >= 1);
  Alcotest.(check bool) "upload completed via retry" true
    (Gcs.upload_state gcs = Gcs.Upload_done)

let test_gcs_upload_times_out_on_dead_link () =
  let link =
    Link.create ~outages:[ { Link.from_step = 0; until_step = max_int } ] ()
  in
  let gcs = Gcs.create link in
  Gcs.start_mission_upload gcs
    [ { Msg.seq = 0; command = Msg.cmd_waypoint; param1 = 0.0; x = 0.0; y = 0.0; z = 10.0 } ];
  let time = ref 0.0 in
  while Gcs.upload_state gcs = Gcs.Upload_in_progress && !time < 40.0 do
    time := !time +. 0.05;
    ignore (Gcs.tick gcs ~time:!time);
    Link.step link
  done;
  Alcotest.(check bool) "explicit timeout" true
    (Gcs.upload_state gcs = Gcs.Upload_timed_out);
  (* The workload gives an upload 30 s; the transaction must resolve
     within that, not hang at the simulator's duration cap. *)
  Alcotest.(check bool) "inside the stepper deadline" true (!time < 30.0)

let command_responder link =
  let decoder = Frame.decoder () in
  let send msg =
    Link.send link Link.Vehicle_end (Frame.encode ~seq:0 ~sysid:1 ~compid:1 msg)
  in
  fun () ->
    List.iter
      (fun frame ->
        match frame.Frame.message with
        | Msg.Command_long { command; _ } ->
          send (Msg.Command_ack { command; accepted = true })
        | _ -> ())
      (Frame.feed decoder (Link.receive link Link.Vehicle_end))

let test_gcs_command_retries_after_loss () =
  let link = Link.create ~outages:[ { Link.from_step = 0; until_step = 2 } ] () in
  let gcs = Gcs.create link in
  let responder = command_responder link in
  Gcs.send_command gcs ~command:400 ~param1:1.0 ();
  let i = ref 0 in
  while Gcs.command_status gcs ~command:400 = Gcs.Tx_pending && !i < 200 do
    incr i;
    ignore (Gcs.tick gcs ~time:(0.1 *. float_of_int !i));
    Link.step link;
    responder ()
  done;
  Alcotest.(check bool) "first send was lost" true (Link.dropped link >= 1);
  Alcotest.(check bool) "acked via retry" true
    (Gcs.command_status gcs ~command:400 = Gcs.Tx_acked true)

let test_gcs_command_times_out_on_dead_link () =
  let link =
    Link.create ~outages:[ { Link.from_step = 0; until_step = max_int } ] ()
  in
  let gcs = Gcs.create link in
  Gcs.send_command gcs ~command:400 ~param1:1.0 ();
  let time = ref 0.0 in
  while Gcs.command_status gcs ~command:400 = Gcs.Tx_pending && !time < 20.0 do
    time := !time +. 0.05;
    ignore (Gcs.tick gcs ~time:!time);
    Link.step link
  done;
  Alcotest.(check bool) "explicit timeout" true
    (Gcs.command_status gcs ~command:400 = Gcs.Tx_timed_out);
  (* Commands get 10 s in the workload steppers. *)
  Alcotest.(check bool) "inside the stepper deadline" true (!time < 10.0)

let test_gcs_mode_confirmed_by_departure () =
  let link = Link.create () in
  let gcs = Gcs.create link in
  let heartbeat mode =
    Link.send link Link.Vehicle_end
      (Frame.encode ~seq:0 ~sysid:1 ~compid:1
         (Msg.Heartbeat { custom_mode = mode; armed = true; system_status = 4 }));
    Link.step link;
    ignore (Gcs.poll gcs)
  in
  heartbeat 5;
  Gcs.request_mode gcs 3;
  Alcotest.(check bool) "pending" true (Gcs.mode_status gcs = Gcs.Tx_pending);
  (* Still in the baseline mode: AUTO never appears as a heartbeat code, so
     confirmation means leaving the mode we were in at request time. *)
  heartbeat 5;
  Alcotest.(check bool) "same mode, still pending" true
    (Gcs.mode_status gcs = Gcs.Tx_pending);
  heartbeat 7;
  Alcotest.(check bool) "departure confirms" true
    (Gcs.mode_status gcs = Gcs.Tx_acked true)

let test_gcs_heartbeat_beacon () =
  let link = Link.create () in
  let gcs = Gcs.create link in
  let decoder = Frame.decoder () in
  let beats = ref 0 in
  for i = 1 to 35 do
    ignore (Gcs.tick gcs ~time:(0.1 *. float_of_int i));
    Link.step link;
    List.iter
      (fun f ->
        match f.Frame.message with
        | Msg.Heartbeat _ -> incr beats
        | _ -> ())
      (Frame.feed decoder (Link.receive link Link.Vehicle_end))
  done;
  (* 3.5 simulated seconds at 1 Hz. *)
  Alcotest.(check bool) "about one per second" true (!beats >= 3 && !beats <= 5)

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "avis_mavlink"
    [
      ( "crc",
        [
          Alcotest.test_case "properties" `Quick test_crc_known_properties;
          Alcotest.test_case "incremental" `Quick test_crc_incremental;
        ] );
      ( "buf",
        [
          Alcotest.test_case "roundtrip" `Quick test_buf_roundtrip;
          Alcotest.test_case "truncated" `Quick test_buf_truncated;
          q prop_buf_i32_roundtrip;
          q prop_buf_f32_roundtrip;
        ] );
      ( "frame",
        [
          Alcotest.test_case "roundtrip all messages" `Quick test_frame_roundtrip_all;
          Alcotest.test_case "metadata" `Quick test_frame_metadata;
          Alcotest.test_case "resync over garbage" `Quick test_decoder_resync_over_garbage;
          Alcotest.test_case "bad crc dropped" `Quick test_decoder_rejects_bad_crc;
          Alcotest.test_case "partial feeds" `Quick test_decoder_handles_partial_feeds;
          q prop_frames_concatenate;
          q prop_decoder_never_raises_and_resyncs;
          q prop_decoder_recovers_between_garbage;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivery" `Quick test_link_delivery;
          Alcotest.test_case "direction" `Quick test_link_direction;
          Alcotest.test_case "jitter keeps order" `Quick test_link_jitter_preserves_order;
          Alcotest.test_case "faults deterministic" `Quick test_link_faults_deterministic;
          Alcotest.test_case "drop all" `Quick test_link_drop_all;
          Alcotest.test_case "corrupt keeps length" `Quick test_link_corrupt_same_length;
          Alcotest.test_case "duplicate" `Quick test_link_duplicate;
          Alcotest.test_case "outage window" `Quick test_link_outage_window;
          Alcotest.test_case "snapshot restores fault stream" `Quick
            test_link_snapshot_restores_fault_stream;
          Alcotest.test_case "restore substitutes outage" `Quick
            test_link_restore_substitutes_outage;
        ] );
      ( "gcs",
        [
          Alcotest.test_case "mission upload" `Quick test_gcs_mission_upload;
          Alcotest.test_case "upload busy" `Quick test_gcs_upload_busy;
          Alcotest.test_case "telemetry cache" `Quick test_gcs_telemetry_cache;
          Alcotest.test_case "command ack" `Quick test_gcs_command_ack;
          Alcotest.test_case "upload retries after loss" `Quick
            test_gcs_upload_retries_after_loss;
          Alcotest.test_case "upload times out on dead link" `Quick
            test_gcs_upload_times_out_on_dead_link;
          Alcotest.test_case "command retries after loss" `Quick
            test_gcs_command_retries_after_loss;
          Alcotest.test_case "command times out on dead link" `Quick
            test_gcs_command_times_out_on_dead_link;
          Alcotest.test_case "mode confirmed by departure" `Quick
            test_gcs_mode_confirmed_by_departure;
          Alcotest.test_case "heartbeat beacon" `Quick test_gcs_heartbeat_beacon;
        ] );
    ]
