(* End-to-end tests for the lossy-datalink fault model: GCS-loss failsafes
   fire per personality at mode boundaries, stacked link+sensor scenarios
   become monitor findings attributed to the GCS-loss transition, workloads
   ride out a lossy (but not dead) link through retransmission, a dead link
   fails cleanly via transaction timeouts, and sensor degradations propagate
   through drivers -> estimator -> monitor. *)

open Avis_sensors
open Avis_firmware
open Avis_mavlink
open Avis_sitl
open Avis_core

let rtl_label = Phase.label Phase.Rtl
let land_label = Phase.label Phase.Land

let sim_config ?(seed = 0) ?(enabled = []) ?max_duration
    ?(link_faults = Link.no_faults) workload policy =
  let base = Sim.default_config policy in
  {
    base with
    Sim.seed;
    enabled_bugs = enabled;
    max_duration =
      (match max_duration with
      | Some d -> d
      | None -> workload.Workload.nominal_duration +. 60.0);
    environment = workload.Workload.environment ();
    link_faults;
  }

let run ?seed ?enabled ?max_duration ?link_faults ?(scenario = Scenario.empty)
    ?(degradations = []) workload policy =
  let sim =
    Sim.create
      ~plan:(Scenario.to_plan scenario)
      ~degradations
      ~link_outages:(Scenario.link_outages scenario)
      (sim_config ?seed ?enabled ?max_duration ?link_faults workload policy)
  in
  let passed = Workload.execute workload sim in
  (sim, Sim.outcome sim ~workload_passed:passed)

let transition_into (o : Sim.outcome) ~to_mode =
  match
    List.find_opt (fun tr -> tr.Avis_hinj.Hinj.to_mode = to_mode) o.Sim.transitions
  with
  | Some tr -> tr
  | None -> Alcotest.fail ("no transition into " ^ to_mode)

let fingerprint (o : Sim.outcome) =
  ( Trace.samples o.Sim.trace,
    o.Sim.crash,
    o.Sim.fence_breached,
    o.Sim.workload_passed,
    o.Sim.transitions,
    o.Sim.triggered_bugs,
    o.Sim.duration,
    o.Sim.sensor_reads )

let profile_for policy workload =
  let profile, _, _ =
    Campaign.profile_and_context (Campaign.default_config policy workload)
  in
  profile

let apm_profile = lazy (profile_for Policy.apm Workload.auto_box)
let px4_profile = lazy (profile_for Policy.px4 Workload.auto_box)
let quickstart_profile = lazy (profile_for Policy.apm Workload.quickstart)

(* A scheduled outage starting mid-mission; the heartbeat timeout expires
   about [gcs_timeout_s] after the last beat received before the window. *)
let outage = Scenario.of_faults [ Scenario.link_loss ~at:12.0 ~duration:120.0 ]

(* The GCS-loss failsafe: once heartbeats have been silent past the
   timeout, both personalities (ArduPilot fixed, PX4 via the default
   NAV_DLL_ACT=2) return to launch — well before the mission's organic
   RTL at ~29 s, and from a waypoint mode, i.e. a new mode boundary for
   the search to target. *)
let test_gcs_loss_triggers_rtl () =
  List.iter
    (fun policy ->
      let _, o =
        run ~max_duration:45.0 ~scenario:outage Workload.auto_box policy
      in
      let tr = transition_into o ~to_mode:rtl_label in
      Alcotest.(check bool)
        (policy.Policy.name ^ " failsafe RTL after the heartbeat timeout")
        true
        (tr.Avis_hinj.Hinj.time > 13.0 && tr.Avis_hinj.Hinj.time < 22.0);
      Alcotest.(check bool)
        (policy.Policy.name ^ " RTL leaves a waypoint mode")
        true
        (String.length tr.Avis_hinj.Hinj.from_mode >= 8
        && String.sub tr.Avis_hinj.Hinj.from_mode 0 8 = "Waypoint"))
    [ Policy.apm; Policy.px4 ]

(* Two-phase stacked finding: phase 1 observes the failsafe transitions a
   link outage produces; phase 2 stacks a whole-kind gyroscope fault on the
   observed boundary, inside a reproduced bug's trigger window that only
   exists because of the GCS loss. The monitor must flag the run, the
   report must attribute the sensor fault to the failsafe-induced mode,
   and the prefix cache must serve the scenario bit-identically. *)
let stacked_gcs_loss_finding policy bug ~boundary ~offset ~check_cache =
  let profile =
    Lazy.force
      (match (Bug.info bug).Bug.firmware with
      | Bug.Ardupilot -> apm_profile
      | Bug.Px4 -> px4_profile)
  in
  (* Phase 1: outage only. *)
  let _, o1 = run ~max_duration:50.0 ~scenario:outage Workload.auto_box policy in
  let tr = transition_into o1 ~to_mode:boundary in
  let at = tr.Avis_hinj.Hinj.time +. offset in
  (* Phase 2: stack the gyro outage on the observed boundary. *)
  let scenario =
    Scenario.of_faults
      (Scenario.link_loss ~at:12.0 ~duration:120.0
      :: List.map
           (fun index ->
             Scenario.sensor_fault { Sensor.kind = Sensor.Gyroscope; index } at)
           [ 0; 1 ])
  in
  let _, o2 = run ~enabled:[ bug ] ~scenario Workload.auto_box policy in
  Alcotest.(check bool) ((Bug.info bug).Bug.report ^ " flawed path exercised")
    true
    (List.mem bug o2.Sim.triggered_bugs);
  let violation =
    match Monitor.check profile o2 with
    | Monitor.Unsafe v -> v
    | Monitor.Safe ->
      Alcotest.fail ((Bug.info bug).Bug.report ^ " not flagged by the monitor")
  in
  let report = Report.make o2 scenario violation in
  (* The link outage and the gyro fault are each attributed to the mode
     the vehicle was actually flying — the gyro fault to the mode the
     GCS-loss failsafe put it in, not to the clean mission's timeline. *)
  Alcotest.(check bool) "link outage in the report" true
    (List.exists
       (fun rf -> rf.Report.subject = Report.Subject_link 120.0)
       report.Report.relative_faults);
  List.iter
    (fun rf ->
      match rf.Report.subject with
      | Report.Subject_sensor _ ->
        Alcotest.(check string) "gyro fault attributed to the failsafe mode"
          boundary rf.Report.mode
      | Report.Subject_link _ -> ())
    report.Report.relative_faults;
  if check_cache then begin
    let make_sim ~scenario =
      Sim.create
        ~plan:(Scenario.to_plan scenario)
        ~link_outages:(Scenario.link_outages scenario)
        (sim_config ~enabled:[ bug ] Workload.auto_box policy)
    in
    let cache =
      Prefix_cache.create ~workload:Workload.auto_box ~make_sim
        ~checkpoint_times:(List.init 40 (fun i -> 2.0 *. float_of_int (i + 1)))
        ()
    in
    let first = Prefix_cache.execute cache ~scenario in
    let second = Prefix_cache.execute cache ~scenario in
    Alcotest.(check bool) "cold = cached finding, bit-identical" true
      (fingerprint o2 = fingerprint first
      && fingerprint o2 = fingerprint second);
    let stats = Prefix_cache.stats cache in
    Alcotest.(check bool) "second execution served from a snapshot" true
      (stats.Prefix_cache.hits >= 1)
  end

let test_gcs_loss_finding_apm () =
  (* APM-16953: gyro loss entering Land. The early Land entry only exists
     because the GCS-loss failsafe cut the mission short. *)
  stacked_gcs_loss_finding Policy.apm Bug.Apm_16953 ~boundary:land_label
    ~offset:0.5 ~check_cache:true

let test_gcs_loss_finding_px4 () =
  (* PX4-17046: gyro loss at RTL entry from a waypoint — here the RTL is
     the NAV_DLL_ACT failsafe itself. *)
  stacked_gcs_loss_finding Policy.px4 Bug.Px4_17046 ~boundary:rtl_label
    ~offset:0.5 ~check_cache:false

(* The acceptance criterion end to end: a campaign over the link-outage
   scenario space (SABRE gated to scenarios carrying an outage) finds a
   GCS-loss-related finding on each personality, identically with the
   prefix cache on and off. *)
let test_campaign_finds_link_finding () =
  List.iter
    (fun policy ->
      let config cached =
        {
          (Campaign.default_config policy Workload.auto_box) with
          Campaign.budget_s = 7200.0;
          prefix_cache = cached;
        }
      in
      let link_finding f =
        Scenario.has_link_loss f.Campaign.report.Report.scenario
      in
      let gate s = (0.0, Scenario.has_link_loss s) in
      let campaign cached =
        Campaign.run ~stop_when:link_finding (config cached)
          ~strategy:(fun ctx -> Sabre.make ~gate ctx)
      in
      let cold = campaign false in
      let cached = campaign true in
      Alcotest.(check bool)
        (policy.Policy.name ^ " campaign finds a link-loss finding") true
        (List.exists link_finding cold.Campaign.findings);
      Alcotest.(check bool) (policy.Policy.name ^ " cache on/off identical")
        true
        (cold.Campaign.simulations = cached.Campaign.simulations
        && Campaign.unsafe_count cold = Campaign.unsafe_count cached
        && cold.Campaign.wall_clock_spent_s
           = cached.Campaign.wall_clock_spent_s
        && List.map
             (fun f -> f.Campaign.simulation_index)
             cold.Campaign.findings
           = List.map
               (fun f -> f.Campaign.simulation_index)
               cached.Campaign.findings))
    [ Policy.apm; Policy.px4 ]

(* A lossy but live link: transactions (mission upload, long commands) must
   complete through retransmission instead of timing out. *)
let test_lossy_link_workload_completes () =
  let lossy = { Link.drop = 0.1; corrupt = 0.05; duplicate = 0.05 } in
  List.iter
    (fun seed ->
      let sim, o = run ~seed ~link_faults:lossy Workload.auto_box Policy.apm in
      Alcotest.(check bool)
        (Printf.sprintf "workload passes despite losses (seed %d)" seed)
        true o.Sim.workload_passed;
      Alcotest.(check bool) "the link really was lossy" true
        (Link.dropped (Sim.link sim) > 10
        && Link.corrupted (Sim.link sim) > 0
        && Link.duplicated (Sim.link sim) > 0))
    [ 0; 1 ]

(* A dead link: the upload exhausts its retransmission budget and the
   workload fails promptly via Upload_timed_out, long before the
   simulation cap. *)
let test_dead_link_fails_cleanly () =
  let dead = Scenario.of_faults [ Scenario.link_loss ~at:0.0 ~duration:1.0e9 ] in
  let sim, o = run ~scenario:dead Workload.auto_box Policy.apm in
  Alcotest.(check bool) "workload fails" false o.Sim.workload_passed;
  Alcotest.(check bool) "upload gave up" true
    (Gcs.upload_state (Sim.gcs sim) = Gcs.Upload_timed_out);
  Alcotest.(check bool) "failed at the transaction timeout, not the cap" true
    (o.Sim.duration < 30.0)

(* Sensor degradations flow through the drivers and estimator into vehicle
   behaviour the monitor can judge — they are never detected as outright
   failures, only as physics gone wrong. *)
let both_baros kind =
  List.map
    (fun index ->
      { Avis_hinj.Hinj.target = { Sensor.kind = Sensor.Barometer; index };
        from_time = 4.0; kind })
    [ 0; 1 ]

let test_degradation_stuck_at_last () =
  (* Both barometers freeze during the climb: the altitude estimate never
     reaches the target and the vehicle climbs away. *)
  let degradations = both_baros Avis_hinj.Hinj.Stuck_at_last in
  let _, clean = run Workload.quickstart Policy.apm in
  let _, o = run ~degradations Workload.quickstart Policy.apm in
  let max_alt (o : Sim.outcome) =
    Array.fold_left
      (fun m s -> Float.max m s.Trace.position.Avis_geo.Vec3.z)
      neg_infinity
      (Trace.samples o.Sim.trace)
  in
  Alcotest.(check bool) "climbs far past the clean apex" true
    (max_alt o > max_alt clean +. 50.0);
  match Monitor.check (Lazy.force quickstart_profile) o with
  | Monitor.Unsafe v ->
    Alcotest.(check bool) "flagged as a fly-away" true
      (v.Monitor.symptom = Monitor.Fly_away)
  | Monitor.Safe -> Alcotest.fail "stuck barometers not flagged"

let test_degradation_constant_bias () =
  (* A +10 m bias on both barometers: the vehicle believes it is higher
     than it is and descends into the ground. *)
  let degradations = both_baros (Avis_hinj.Hinj.Constant_bias 10.0) in
  let _, o = run ~degradations Workload.quickstart Policy.apm in
  Alcotest.(check bool) "impacts the ground" true (o.Sim.crash <> None);
  match Monitor.check (Lazy.force quickstart_profile) o with
  | Monitor.Unsafe v ->
    Alcotest.(check bool) "flagged as a crash" true
      (v.Monitor.symptom = Monitor.Crash)
  | Monitor.Safe -> Alcotest.fail "biased barometers not flagged"

let test_degradation_extra_noise_deterministic () =
  (* Extra noise perturbs the flight without failing it — and because the
     noise is drawn from the injector's own RNG, the run is still
     bit-identical under replay. *)
  let degradations = both_baros (Avis_hinj.Hinj.Extra_noise 3.0) in
  let _, clean = run Workload.quickstart Policy.apm in
  let _, a = run ~degradations Workload.quickstart Policy.apm in
  let _, b = run ~degradations Workload.quickstart Policy.apm in
  Alcotest.(check bool) "noisy run still passes" true a.Sim.workload_passed;
  Alcotest.(check bool) "deterministic" true (fingerprint a = fingerprint b);
  Alcotest.(check bool) "noise visibly perturbs the trajectory" true
    (fingerprint a <> fingerprint clean)

let () =
  Alcotest.run "avis_link_faults"
    [
      ( "gcs loss",
        [
          Alcotest.test_case "failsafe RTL per personality" `Slow
            test_gcs_loss_triggers_rtl;
          Alcotest.test_case "stacked finding (apm, cached)" `Slow
            test_gcs_loss_finding_apm;
          Alcotest.test_case "stacked finding (px4)" `Slow
            test_gcs_loss_finding_px4;
          Alcotest.test_case "campaign finds link findings" `Slow
            test_campaign_finds_link_finding;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "lossy link retries to completion" `Slow
            test_lossy_link_workload_completes;
          Alcotest.test_case "dead link fails cleanly" `Slow
            test_dead_link_fails_cleanly;
        ] );
      ( "degradations",
        [
          Alcotest.test_case "stuck-at-last fly-away" `Slow
            test_degradation_stuck_at_last;
          Alcotest.test_case "constant bias crash" `Slow
            test_degradation_constant_bias;
          Alcotest.test_case "extra noise deterministic" `Slow
            test_degradation_extra_noise_deterministic;
        ] );
    ]
