(* Multi-process sharing of the run journal and the checkpoint store —
   the invariants the hunt daemon's forked workers rely on.

   (1) Two processes appending to one [Run_journal] concurrently never
   tear or interleave a record: every line of the resulting file is
   complete JSON and every appended record is served back by [find].
   Appends go through a single buffered write to a file opened with
   [O_APPEND] per line, which POSIX makes atomic with respect to the
   write offset.

   (2) Two processes racing [Checkpoint_store] writes on the same keys
   both leave valid entries behind: the store writes to a temp name and
   renames into place, so a reader never observes a partial file. *)

open Avis_core

let temp_counter = ref 0

let temp_dir () =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "avis-test-mp-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* Run [child] in a forked process; the child must not return. *)
let in_child child =
  match Unix.fork () with
  | 0 ->
    (try child () with _ -> Unix._exit 1);
    Unix._exit 0
  | pid -> pid

let wait_ok name pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n ->
    Alcotest.failf "%s: child exited with %d" name n
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
    Alcotest.failf "%s: child killed/stopped by signal %d" name s

(* ------------------------------------------------------------------ *)
(* Concurrent journal writers                                           *)
(* ------------------------------------------------------------------ *)

let writers = 2
let records_per_writer = 50

let record ~writer ~i =
  {
    Run_journal.key = Printf.sprintf "key-%d-%03d" writer i;
    (* Spaces and separators on purpose: framing must not care. *)
    label = Printf.sprintf "cell %d/%03d with = and spaces" writer i;
    simulations = i;
    inferences = writer;
    spent_bits = Int64.bits_of_float (float_of_int i *. 1.5);
    elapsed_bits = Some (Int64.bits_of_float (float_of_int i *. 0.25));
    findings =
      [
        {
          Run_journal.simulation_index = i;
          description = "synthetic finding for the concurrency test";
          bucket = "Takeoff";
          bugs = [ "AV-0" ];
        };
      ];
  }

let test_journal_concurrent_writers () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "journal.jsonl" in
  (* Create the file and header before any writer exists, as the daemon
     does, so children race only on record appends. *)
  let _ = Run_journal.open_ ~fingerprint:"mp-test" path in
  let pids =
    List.init writers (fun writer ->
        in_child (fun () ->
            let j = Run_journal.open_ ~fingerprint:"mp-test" path in
            for i = 0 to records_per_writer - 1 do
              Run_journal.record_complete j (record ~writer ~i)
            done))
  in
  List.iter (wait_ok "journal writer") pids;
  (* Every line of the file must be complete, parseable JSON: a torn or
     interleaved write would leave a line that is not. *)
  let ic = open_in_bin path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       match Avis_util.Json.of_string line with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "unparseable journal line (%s): %s" e line
     done
   with End_of_file -> close_in_noerr ic);
  Alcotest.(check int)
    "header + all records on disk"
    (1 + (writers * records_per_writer))
    !lines;
  (* And a fresh reader serves every record back. *)
  let j = Run_journal.open_ ~fingerprint:"mp-test" path in
  Alcotest.(check int) "all records load" (writers * records_per_writer)
    (Run_journal.completed_count j);
  for writer = 0 to writers - 1 do
    for i = 0 to records_per_writer - 1 do
      let key = Printf.sprintf "key-%d-%03d" writer i in
      match Run_journal.find j ~key with
      | None -> Alcotest.failf "record %s lost" key
      | Some r ->
        Alcotest.(check int) (key ^ " simulations") i r.Run_journal.simulations
    done
  done

(* ------------------------------------------------------------------ *)
(* Racing checkpoint-store writers                                      *)
(* ------------------------------------------------------------------ *)

let times = 20

let test_store_racing_writers () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let payload i = Printf.sprintf "payload-%04d-%s" i (String.make 256 'x') in
  let child () =
    let store =
      Checkpoint_store.create ~fingerprint:"mp-test" ~dir ~config_key:"cfg" ()
    in
    for i = 1 to times do
      Checkpoint_store.put store ~fault_key:"shared" ~time:(float_of_int i)
        ~payload:(lazy (payload i))
    done
  in
  let pids = [ in_child child; in_child child ] in
  List.iter (wait_ok "store writer") pids;
  let store =
    Checkpoint_store.create ~fingerprint:"mp-test" ~dir ~config_key:"cfg" ()
  in
  for i = 1 to times do
    match
      Checkpoint_store.lookup store ~fault_key:"shared"
        ~before:(float_of_int i +. 0.5)
    with
    | None -> Alcotest.failf "no checkpoint served before t=%d.5" i
    | Some (t, data) ->
      Alcotest.(check (float 0.0)) "latest time" (float_of_int i) t;
      Alcotest.(check string) "payload intact" (payload i) data
  done

let () =
  Alcotest.run "avis multiproc"
    [
      ( "multiproc",
        [
          Alcotest.test_case "journal: two writer processes, no torn lines"
            `Quick test_journal_concurrent_writers;
          Alcotest.test_case "store: racing writers both readable" `Quick
            test_store_racing_writers;
        ] );
    ]
