(* The hunt daemon: wire-protocol round trips, request expansion, and a
   live end-to-end session against a forked daemon.

   The end-to-end test is the library-level version of CI's daemon smoke
   job: fork [Hunt_service.serve], submit the same tiny hunt twice over
   the socket, and require the memo-served record to be byte-identical to
   the live one — the acceptance bar for the whole service. *)

open Avis_core
open Avis_server

let temp_counter = ref 0

let temp_dir () =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "avis-test-server-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Wire round trips                                                     *)
(* ------------------------------------------------------------------ *)

let sample_request =
  {
    Wire.firmware = "apm";
    workload = "quickstart";
    approaches = [ "random"; "avis" ];
    (* Not representable in decimal: the bits must survive the wire. *)
    budget_s = 0.1 +. 0.2;
    seed = 42;
    lanes = Some 4;
    shards = 2;
  }

let sample_record =
  {
    Run_journal.key = "abcdef0123456789";
    label = "random/ArduPilot/quickstart";
    simulations = 17;
    inferences = 3;
    spent_bits = Int64.bits_of_float 123.456;
    elapsed_bits = Some (Int64.bits_of_float 7.89);
    findings =
      [
        {
          Run_journal.simulation_index = 9;
          description = "a finding with spaces, \"quotes\" and \\ slashes";
          bucket = "Takeoff";
          bugs = [ "AV-3"; "AV-7" ];
        };
      ];
  }

let check_request r =
  match Wire.parse_request (Wire.render_request r) with
  | Ok r' -> Alcotest.(check bool) "request round-trips" true (r = r')
  | Error e -> Alcotest.failf "request did not parse back: %s" e

let check_response r =
  match Wire.parse_response (Wire.render_response r) with
  | Ok r' -> Alcotest.(check bool) "response round-trips" true (r = r')
  | Error e -> Alcotest.failf "response did not parse back: %s" e

let test_wire_request_roundtrip () =
  check_request (Wire.Submit sample_request);
  check_request (Wire.Submit { sample_request with Wire.lanes = None });
  check_request Wire.Watch;
  check_request Wire.Status;
  check_request Wire.Ping

let test_wire_response_roundtrip () =
  check_response (Wire.Accepted { req = "r1"; cells = [ "a/b/c"; "d/e/f" ] });
  check_response (Wire.Rejected { reason = "unknown workload \"x\"" });
  check_response
    (Wire.Cell
       {
         req = "r1";
         approach = "random";
         label = "random/ArduPilot/quickstart";
         status = Wire.Cell_done sample_record;
       });
  check_response
    (Wire.Cell
       {
         req = "r1";
         approach = "random";
         label = "random/ArduPilot/quickstart";
         status = Wire.Cell_memo sample_record;
       });
  check_response
    (Wire.Cell
       {
         req = "r2";
         approach = "avis";
         label = "avis/PX4/auto-box";
         status =
           Wire.Cell_quarantined
             { code = "WORKER-LOST"; message = "worker died"; attempts = 3 };
       });
  check_response (Wire.Done { req = "r1"; retries = 1; quarantined = 0 });
  (* The worker-to-daemon half of the pull handshake shares the response
     layer. *)
  check_response Wire.Cell_request;
  check_response
    (Wire.Cell_result
       {
         req = "r1";
         approach = "random";
         label = "random/ArduPilot/quickstart";
         status = Wire.Cell_done sample_record;
       });
  check_response
    (Wire.Cell_result
       {
         req = "r1";
         approach = "random";
         label = "random/ArduPilot/quickstart";
         status =
           Wire.Cell_quarantined
             { code = "BAD-ASSIGNMENT"; message = "no"; attempts = 1 };
       });
  check_response
    (Wire.Status_info
       {
         active = 2;
         queued = 1;
         workers = 4;
         memo_served = 7;
         worker_retries = 1;
       });
  check_response Wire.Pong

let test_wire_rejects () =
  List.iter
    (fun line ->
      match Wire.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad request line: %s" line)
    [
      "";
      "not json";
      "{}";
      {|{"op":"fly"}|};
      (* Submit with a missing field and with malformed budget bits. *)
      {|{"op":"submit","firmware":"apm","workload":"quickstart","approaches":["random"],"seed":1,"shards":1}|};
      {|{"op":"submit","firmware":"apm","workload":"quickstart","approaches":["random"],"budget_bits":"zz","seed":1,"shards":1}|};
    ];
  match Wire.parse_response {|{"type":"cell","req":"r1"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a cell response without a status"

let sample_assignment =
  {
    Wire.a_req = "r7";
    a_firmware = "apm";
    a_workload = "quickstart";
    a_approach = "random";
    (* Not representable in decimal: the bits must survive the wire. *)
    a_budget_s = 0.1 +. 0.2;
    a_seed = 42;
    a_lanes = Some 4;
  }

let check_directive d =
  match Wire.parse_directive (Wire.render_directive d) with
  | Ok d' -> Alcotest.(check bool) "directive round-trips" true (d = d')
  | Error e -> Alcotest.failf "directive did not parse back: %s" e

let test_wire_directive_roundtrip () =
  check_directive (Wire.Cell_assign sample_assignment);
  check_directive
    (Wire.Cell_assign { sample_assignment with Wire.a_lanes = None });
  check_directive Wire.Drain;
  (match Wire.parse_directive {|{"op":"cell-assign","req":"r1"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an assignment without its cell fields");
  match Wire.parse_directive "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a non-JSON directive line"

(* An assignment expands through the same validation as a request, so a
   worker's cell config cannot drift from what submit/hunt would build. *)
let test_cell_of_assignment () =
  let req =
    { sample_request with Wire.approaches = [ "random" ]; shards = 1 }
  in
  let from_request =
    match Worker.cells_of_request req with
    | Ok [ cell ] -> cell
    | Ok _ -> Alcotest.fail "request expanded to more than one cell"
    | Error e -> Alcotest.failf "request rejected: %s" e
  in
  (match
     Worker.cell_of_assignment
       {
         Wire.a_req = "r1";
         a_firmware = req.Wire.firmware;
         a_workload = req.Wire.workload;
         a_approach = "random";
         a_budget_s = req.Wire.budget_s;
         a_seed = req.Wire.seed;
         a_lanes = req.Wire.lanes;
       }
   with
  | Ok cell ->
    (* Configs carry closures (workload scenarios), so compare their
       canonical journal-identity bytes instead of the values. *)
    Alcotest.(check string) "assignment rebuilds the request's config"
      (Avis_core.Campaign.journal_identity from_request.Worker.config
         ~approach:"random")
      (Avis_core.Campaign.journal_identity cell.Worker.config
         ~approach:"random");
    Alcotest.(check string) "same label" from_request.Worker.label
      cell.Worker.label
  | Error e -> Alcotest.failf "assignment rejected: %s" e);
  match
    Worker.cell_of_assignment
      { sample_assignment with Wire.a_approach = "teleport" }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown approach"

let test_fork_budget () =
  let check name want ~limit ~live ~idle_slots ~pending =
    Alcotest.(check int)
      name want
      (Worker.fork_budget ~limit ~live ~idle_slots ~pending)
  in
  check "no pending work forks nothing" 0 ~limit:4 ~live:0 ~idle_slots:0
    ~pending:0;
  check "pending work forks up to the limit" 4 ~limit:4 ~live:0 ~idle_slots:0
    ~pending:9;
  check "live workers count against the limit" 2 ~limit:4 ~live:2
    ~idle_slots:0 ~pending:9;
  check "idle slots absorb pending first" 1 ~limit:4 ~live:1 ~idle_slots:2
    ~pending:3;
  check "fully idle crew forks nothing" 0 ~limit:4 ~live:2 ~idle_slots:5
    ~pending:3;
  check "at the limit forks nothing" 0 ~limit:4 ~live:4 ~idle_slots:0
    ~pending:9;
  check "never negative" 0 ~limit:2 ~live:3 ~idle_slots:7 ~pending:1;
  check "limit clamps to one" 1 ~limit:0 ~live:0 ~idle_slots:0 ~pending:5

let test_wire_budget_bits_lossless () =
  List.iter
    (fun budget ->
      match
        Wire.parse_request
          (Wire.render_request
             (Wire.Submit { sample_request with Wire.budget_s = budget }))
      with
      | Ok (Wire.Submit r) ->
        Alcotest.(check bool)
          (Printf.sprintf "bits of %h preserved" budget)
          true
          (Int64.bits_of_float r.Wire.budget_s = Int64.bits_of_float budget)
      | Ok _ -> Alcotest.fail "parsed to a different request"
      | Error e -> Alcotest.failf "failed to parse: %s" e)
    [ 7200.0; 0.1; 1e-300; Float.pi; 4.9e-324 ]

let test_metrics_layer_split () =
  Alcotest.(check bool) "metrics prefix" true
    (Wire.is_metrics_line "[avis] event=progress cell=x");
  Alcotest.(check bool) "control line" false
    (Wire.is_metrics_line {|{"type":"pong"}|});
  Alcotest.(check bool) "short line" false (Wire.is_metrics_line "[avi")

(* ------------------------------------------------------------------ *)
(* Request expansion                                                    *)
(* ------------------------------------------------------------------ *)

let test_cells_of_request () =
  match Worker.cells_of_request sample_request with
  | Error e -> Alcotest.failf "valid request rejected: %s" e
  | Ok cells ->
    Alcotest.(check int) "one cell per approach" 2 (List.length cells);
    List.iter2
      (fun name (cell : Worker.cell) ->
        Alcotest.(check string) "approach" name cell.Worker.approach;
        Alcotest.(check string) "label"
          (Printf.sprintf "%s/ArduPilot/quickstart" name)
          cell.Worker.label;
        (* The exact seed and budget an in-process hunt would use. *)
        Alcotest.(check int) "seed"
          (Campaign.cell_seed ~base:42 ~policy:"ArduPilot"
             ~workload:"quickstart" ~approach:name ())
          cell.Worker.config.Campaign.seed;
        Alcotest.(check bool) "budget bits" true
          (Int64.bits_of_float cell.Worker.config.Campaign.budget_s
          = Int64.bits_of_float sample_request.Wire.budget_s))
      sample_request.Wire.approaches cells

let test_cells_of_request_rejects () =
  let expect_error label r =
    match Worker.cells_of_request r with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" label
  in
  expect_error "unknown firmware"
    { sample_request with Wire.firmware = "betaflight" };
  expect_error "unknown workload"
    { sample_request with Wire.workload = "nope" };
  expect_error "unknown approach"
    { sample_request with Wire.approaches = [ "random"; "montecarlo" ] };
  expect_error "no approaches" { sample_request with Wire.approaches = [] };
  expect_error "zero budget" { sample_request with Wire.budget_s = 0.0 };
  expect_error "negative budget" { sample_request with Wire.budget_s = -1.0 };
  expect_error "infinite budget"
    { sample_request with Wire.budget_s = infinity };
  expect_error "nan budget" { sample_request with Wire.budget_s = nan }

let test_shard_cells () =
  let groups = Worker.shard_cells ~shards:3 [ 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check (list (list int)))
    "round robin" [ [ 1; 4; 7 ]; [ 2; 5 ]; [ 3; 6 ] ] groups;
  Alcotest.(check (list (list int)))
    "more shards than cells" [ [ 1 ]; [ 2 ] ]
    (Worker.shard_cells ~shards:5 [ 1; 2 ]);
  Alcotest.(check (list (list int)))
    "non-positive shard count" [ [ 1; 2 ] ]
    (Worker.shard_cells ~shards:0 [ 1; 2 ]);
  Alcotest.(check (list (list int))) "no cells" []
    (Worker.shard_cells ~shards:3 [])

(* The client prints daemon results under the strategy's display name;
   the mapping must agree with what each strategy actually reports. *)
let test_display_names_match () =
  let config =
    {
      (Campaign.default_config Avis_firmware.Policy.apm Workload.quickstart) with
      Campaign.budget_s = 1.0;
    }
  in
  let _, ctx, _ = Campaign.profile_and_context config in
  List.iter
    (fun name ->
      match Worker.strategy_of_name name with
      | None -> Alcotest.failf "approach %s unresolvable" name
      | Some strategy ->
        Alcotest.(check string)
          (name ^ " display name")
          (strategy ctx).Search.name (Worker.display_name name))
    [ "avis"; "strat-bfi"; "bfi"; "random"; "dfs"; "bfs" ]

(* ------------------------------------------------------------------ *)
(* End to end against a forked daemon                                   *)
(* ------------------------------------------------------------------ *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc req =
  output_string oc (Wire.render_request req ^ "\n");
  flush oc

(* Read control responses until [until] says stop, checking every
   interleaved metrics line parses and carries the request tag. *)
let read_until ~req ic until =
  let collected = ref [] in
  let rec go () =
    let line = input_line ic in
    if Wire.is_metrics_line line then begin
      (match Avis_util.Metrics.parse_line line with
      | Ok (_, _, tags) ->
        Alcotest.(check (option string))
          "metrics line tagged with the request id" (Some req)
          (List.assoc_opt "req" tags)
      | Error e -> Alcotest.failf "bad metrics line (%s): %s" e line);
      go ()
    end
    else
      match Wire.parse_response line with
      | Error e -> Alcotest.failf "bad control line (%s): %s" e line
      | Ok resp ->
        collected := resp :: !collected;
        if until resp then List.rev !collected else go ()
  in
  go ()

let submit_and_collect ic oc request =
  send oc (Wire.Submit request);
  let req =
    match input_line ic with
    | line -> (
      match Wire.parse_response line with
      | Ok (Wire.Accepted { req; cells }) ->
        Alcotest.(check int) "accepted all cells"
          (List.length request.Wire.approaches)
          (List.length cells);
        req
      | Ok (Wire.Rejected { reason }) ->
        Alcotest.failf "daemon rejected the hunt: %s" reason
      | Ok _ -> Alcotest.fail "expected accepted/rejected first"
      | Error e -> Alcotest.failf "bad accept line: %s" e)
  in
  let responses =
    read_until ~req ic (function Wire.Done d -> d.req = req | _ -> false)
  in
  List.filter_map
    (function
      | Wire.Cell { req = r; status; _ } when r = req -> Some status
      | _ -> None)
    responses

let tiny_request =
  {
    Wire.firmware = "apm";
    workload = "quickstart";
    approaches = [ "random" ];
    budget_s = 20.0;
    seed = 3;
    lanes = None;
    shards = 1;
  }

let record_bytes r = Avis_util.Json.to_string (Run_journal.record_to_json r)

let test_daemon_end_to_end () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let socket_path = Filename.concat dir "huntd.sock" in
  let cfg =
    {
      Hunt_service.socket_path;
      tcp_port = None;
      journal_path = Filename.concat dir "journal.jsonl";
      store_dir = None;
      workers = 2;
      jobs = 1;
    }
  in
  let daemon =
    match Unix.fork () with
    | 0 ->
      (try Hunt_service.serve cfg with _ -> Unix._exit 1);
      Unix._exit 0
    | pid -> pid
  in
  Fun.protect ~finally:(fun () ->
      (try Unix.kill daemon Sys.sigterm with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] daemon) with Unix.Unix_error _ -> ())
  @@ fun () ->
  let rec await_socket n =
    if Sys.file_exists socket_path then ()
    else if n = 0 then Alcotest.fail "daemon never created its socket"
    else begin
      Unix.sleepf 0.05;
      await_socket (n - 1)
    end
  in
  await_socket 100;
  let ic, oc = connect socket_path in
  send oc Wire.Ping;
  (match Wire.parse_response (input_line ic) with
  | Ok Wire.Pong -> ()
  | _ -> Alcotest.fail "no pong");
  (* Cold: the cell runs live in a worker. *)
  let live =
    match submit_and_collect ic oc tiny_request with
    | [ Wire.Cell_done r ] -> r
    | [ Wire.Cell_memo _ ] -> Alcotest.fail "cold submit served a memo"
    | other -> Alcotest.failf "expected one live cell, got %d" (List.length other)
  in
  Alcotest.(check bool) "live cell simulated" true
    (live.Run_journal.simulations > 0);
  (* Warm: same request again must be memo-served, byte-identical. *)
  (match submit_and_collect ic oc tiny_request with
  | [ Wire.Cell_memo r ] ->
    Alcotest.(check string) "memo bytes = live bytes" (record_bytes live)
      (record_bytes r)
  | [ Wire.Cell_done _ ] -> Alcotest.fail "warm submit re-ran the cell"
  | other -> Alcotest.failf "expected one memo cell, got %d" (List.length other));
  send oc Wire.Status;
  match Wire.parse_response (input_line ic) with
  | Ok (Wire.Status_info s) ->
    Alcotest.(check bool) "memo served counted" true (s.Wire.memo_served >= 1)
  | _ -> Alcotest.fail "no status"

let () =
  Alcotest.run "avis server"
    [
      ( "wire",
        [
          Alcotest.test_case "request round-trip" `Quick
            test_wire_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick
            test_wire_response_roundtrip;
          Alcotest.test_case "malformed lines rejected" `Quick
            test_wire_rejects;
          Alcotest.test_case "budget crosses as bits" `Quick
            test_wire_budget_bits_lossless;
          Alcotest.test_case "directive round-trip" `Quick
            test_wire_directive_roundtrip;
          Alcotest.test_case "metrics/control layering" `Quick
            test_metrics_layer_split;
        ] );
      ( "worker",
        [
          Alcotest.test_case "cells mirror hunt's configs" `Quick
            test_cells_of_request;
          Alcotest.test_case "invalid requests rejected" `Quick
            test_cells_of_request_rejects;
          Alcotest.test_case "round-robin sharding" `Quick test_shard_cells;
          Alcotest.test_case "assignments rebuild request configs" `Quick
            test_cell_of_assignment;
          Alcotest.test_case "fork budget" `Quick test_fork_budget;
          Alcotest.test_case "display names match strategies" `Quick
            test_display_names_match;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "end-to-end: live then memo, same bytes" `Quick
            test_daemon_end_to_end;
        ] );
    ]
