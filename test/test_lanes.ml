(* Tests for the structure-of-arrays lane stepping: bit-identity of the
   batched physics kernel against World.step and World.step_reference
   under random lane widths, fork times and retirement orders; the
   allocation-free guarantee of the lock-step round; the batched sensor
   drain; Sim.Batch adoption; and lanes-on vs lanes-off campaign
   identity. *)

open Avis_geo
open Avis_physics
open Avis_core
open Avis_firmware

let dt = 0.004
let hover = Airframe.hover_throttle Airframe.iris
let steps_total = 3000

(* The bench's three-phase command profile: climb, asymmetric thrust,
   descent — exercises every torque and contact branch of the kernel. *)
let profile i =
  if i < 200 then Array.make 4 (hover *. 1.2)
  else if i < 1200 then [| hover *. 1.02; hover *. 0.98; hover; hover |]
  else Array.make 4 (hover *. 0.9)

let make_flight_world ~windy ~seed =
  let environment =
    if windy then
      Environment.create
        ~wind:
          (Some
             { Environment.steady = Vec3.make 3.0 1.0 0.0;
               gust_stddev = 1.0; gust_correlation_s = 1.0 })
        ()
    else Environment.benign ()
  in
  World.create ~environment ~rng:(Avis_util.Rng.create seed)
    ~position:(Vec3.make 0.0 0.0 0.0) ()

let fingerprint w =
  let b = World.body w in
  let p = Rigid_body.position_v b
  and v = Rigid_body.velocity_v b
  and q = Rigid_body.attitude_q b
  and o = Rigid_body.angular_velocity_v b in
  List.map Int64.bits_of_float
    [ p.Vec3.x; p.y; p.z; v.x; v.y; v.z; q.Quat.w; q.Quat.x; q.Quat.y;
      q.Quat.z; o.Vec3.x; o.y; o.z; World.time w ]

(* Step a lone world through the full profile with [stepf]. *)
let oracle stepf ~windy ~seed =
  let w = make_flight_world ~windy ~seed in
  for i = 0 to steps_total - 1 do
    ignore (stepf w ~motor_commands:(profile i) ~dt)
  done;
  fingerprint w

(* A shuffled [0..n-1] drawn from [rng] (Fisher–Yates). *)
let permutation rng n =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Avis_util.Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

(* Each lane's world flies singly until its fork step, is then adopted
   into the batch mid-flight, and after the run the lanes are released in
   a random order. Every trajectory must be bit-identical to stepping the
   same-seeded world alone — against both the optimised and the reference
   single-world step. *)
let lanes_match_oracles (width, fork_spread, case_seed) =
  let rng = Avis_util.Rng.create (1 + case_seed) in
  let windy i = i mod 2 = 1 in
  let forks =
    Array.init width (fun _ ->
        if fork_spread = 0 then 0 else Avis_util.Rng.int rng fork_spread)
  in
  let worlds =
    Array.init width (fun i -> make_flight_world ~windy:(windy i) ~seed:(7 + i))
  in
  let lanes = Lanes.create ~width ~motor_count:4 in
  for t = 0 to steps_total - 1 do
    let cmds = profile t in
    Array.iteri
      (fun i w ->
        if forks.(i) = t then Lanes.adopt lanes i w
        else if forks.(i) > t then ignore (World.step w ~motor_commands:cmds ~dt))
      worlds;
    Lanes.step_all lanes ~motor_commands:cmds ~dt
  done;
  Array.iter (fun i -> Lanes.release lanes i) (permutation rng width);
  Array.for_all
    (fun i ->
      let expect_opt = oracle World.step ~windy:(windy i) ~seed:(7 + i) in
      let expect_ref =
        oracle World.step_reference ~windy:(windy i) ~seed:(7 + i)
      in
      let got = fingerprint worlds.(i) in
      got = expect_opt && got = expect_ref)
    (Array.init width (fun i -> i))

let prop_lane_identity =
  QCheck.Test.make
    ~name:"lane fingerprints bit-identical to World.step and step_reference"
    ~count:12
    QCheck.(
      triple (int_range 1 16) (int_range 0 500)
        (int_range 0 1_000_000))
    lanes_match_oracles

(* Retiring a lane mid-campaign and refilling its slot with a fresh world
   must not disturb the surviving lanes, and the replacement's trajectory
   (joining at a later round) must itself match its oracle. *)
let test_retire_and_refill () =
  let width = 4 in
  let split = 1500 in
  let lanes = Lanes.create ~width ~motor_count:4 in
  let originals =
    Array.init width (fun i -> make_flight_world ~windy:(i mod 2 = 1) ~seed:(7 + i))
  in
  Array.iteri (fun i w -> Lanes.adopt lanes i w) originals;
  for t = 0 to split - 1 do
    Lanes.step_all lanes ~motor_commands:(profile t) ~dt
  done;
  (* Retire lane 1, refill the freed slot with a new scenario's world. *)
  Lanes.release lanes 1;
  let retired_fp = fingerprint originals.(1) in
  let replacement = make_flight_world ~windy:false ~seed:42 in
  Alcotest.(check (option int)) "slot 1 freed" (Some 1) (Lanes.free_slot lanes);
  Lanes.adopt lanes 1 replacement;
  for t = split to steps_total - 1 do
    Lanes.step_all lanes ~motor_commands:(profile t) ~dt
  done;
  for i = 0 to width - 1 do
    Lanes.release lanes i
  done;
  (* Retired world: unchanged since its release at [split] steps. *)
  let oracle_half =
    let w = make_flight_world ~windy:true ~seed:8 in
    for t = 0 to split - 1 do
      ignore (World.step w ~motor_commands:(profile t) ~dt)
    done;
    fingerprint w
  in
  Alcotest.(check bool) "retired lane froze at release" true
    (retired_fp = oracle_half && fingerprint originals.(1) = retired_fp);
  (* Survivors: full-profile oracles. *)
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "survivor lane %d matches oracle" i)
        true
        (fingerprint originals.(i)
        = oracle World.step ~windy:(i mod 2 = 1) ~seed:(7 + i)))
    [ 0; 2; 3 ];
  (* Replacement: same commands from the round it joined. *)
  let replacement_oracle =
    let w = make_flight_world ~windy:false ~seed:42 in
    for t = split to steps_total - 1 do
      ignore (World.step w ~motor_commands:(profile t) ~dt)
    done;
    fingerprint w
  in
  Alcotest.(check bool) "replacement lane matches oracle" true
    (fingerprint replacement = replacement_oracle)

(* The lock-step round must not allocate: the columns are preallocated at
   create time and the kernel works in unboxed floats. *)
let test_step_all_allocation_free () =
  let width = 8 in
  let lanes = Lanes.create ~width ~motor_count:4 in
  for i = 0 to width - 1 do
    Lanes.adopt lanes i
      (World.create ~position:(Vec3.make 0.0 0.0 100.0) ())
  done;
  let cmds = Array.make 4 hover in
  for _ = 1 to 1000 do
    Lanes.step_all lanes ~motor_commands:cmds ~dt
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    Lanes.step_all lanes ~motor_commands:cmds ~dt
  done;
  let allocated = Gc.minor_words () -. w0 in
  if allocated >= 64.0 then
    Alcotest.failf
      "batched lock-step allocated %.0f minor words over 1000 rounds (%d lanes)"
      allocated width

(* The batched sensor drain shares the suite's charge cell by pointer and
   must reproduce Suite.tick's state of charge bit-for-bit. *)
let test_sensor_lane_drain_identity () =
  let world = World.create ~position:(Vec3.make 0.0 0.0 50.0) () in
  let plain = Avis_sensors.Suite.create ~rng:(Avis_util.Rng.create 1) () in
  let laned = Avis_sensors.Suite.create ~rng:(Avis_util.Rng.create 1) () in
  let sl = Avis_sensors.Lanes.create ~width:2 in
  Avis_sensors.Lanes.adopt sl 0 laned world;
  for _ = 1 to 5000 do
    Avis_sensors.Suite.tick plain world ~dt;
    Avis_sensors.Lanes.tick sl 0 ~dt
  done;
  Avis_sensors.Lanes.release sl 0;
  Alcotest.(check bool) "battery drained" true
    (Avis_sensors.Suite.battery_remaining plain < 1.0);
  Alcotest.(check bool) "drain bit-identical" true
    (Int64.bits_of_float (Avis_sensors.Suite.battery_remaining plain)
    = Int64.bits_of_float (Avis_sensors.Suite.battery_remaining laned))

(* A lane-bound harness must fly the same flight as an unbatched one:
   same outcome, same transitions, same final battery. *)
let test_sim_batch_identity () =
  let open Avis_sitl in
  let config =
    { (Sim.default_config Policy.apm) with Sim.seed = 5; max_duration = 75.0 }
  in
  let run_batched () =
    let sim = Sim.create config in
    let batch = Sim.Batch.create ~width:4 ~motor_count:4 in
    (match Sim.Batch.adopt batch sim with
    | Some 0 -> ()
    | Some s -> Alcotest.failf "expected slot 0, got %d" s
    | None -> Alcotest.fail "adoption refused");
    Alcotest.(check int) "one lane active" 1 (Sim.Batch.active batch);
    Alcotest.(check int) "fork counted" 1 (Sim.Batch.forks batch);
    let passed = Workload.execute Workload.quickstart sim in
    (* The workload passes before the duration cap, so the lane is not
       yet retireable; run out the clock and it is. *)
    Alcotest.(check int) "not finished yet" 0 (Sim.Batch.retire_finished batch);
    let (_ : bool) = Sim.run_until sim (fun s -> Sim.finished s) in
    Alcotest.(check int) "finished lane retired" 1
      (Sim.Batch.retire_finished batch);
    Alcotest.(check int) "retire counted" 1 (Sim.Batch.retired batch);
    (Sim.outcome sim ~workload_passed:passed, fingerprint (Sim.world sim))
  in
  let run_plain () =
    let sim = Sim.create config in
    let passed = Workload.execute Workload.quickstart sim in
    let (_ : bool) = Sim.run_until sim (fun s -> Sim.finished s) in
    (Sim.outcome sim ~workload_passed:passed, fingerprint (Sim.world sim))
  in
  let a, fp_a = run_batched () and b, fp_b = run_plain () in
  Alcotest.(check bool) "workload passed" true a.Sim.workload_passed;
  Alcotest.(check bool) "same pass/fail" a.Sim.workload_passed
    b.Sim.workload_passed;
  Alcotest.(check (float 0.0)) "same duration" b.Sim.duration a.Sim.duration;
  Alcotest.(check int) "same transition count"
    (List.length b.Sim.transitions)
    (List.length a.Sim.transitions);
  Alcotest.(check int) "same sensor reads" b.Sim.sensor_reads
    a.Sim.sensor_reads;
  Alcotest.(check bool) "same final world bits" true (fp_a = fp_b)

(* Adoption is refused (not wedged) for airframes the batch was not sized
   for, for already-bound harnesses, and for full batches. *)
let test_sim_batch_refusals () =
  let open Avis_sitl in
  let config = Sim.default_config Policy.apm in
  let batch = Sim.Batch.create ~width:1 ~motor_count:4 in
  let first = Sim.create config in
  Alcotest.(check (option int)) "adopts" (Some 0) (Sim.Batch.adopt batch first);
  Alcotest.(check (option int)) "already bound" None
    (Sim.Batch.adopt batch first);
  Alcotest.(check (option int)) "batch full" None
    (Sim.Batch.adopt batch (Sim.create config));
  Sim.Batch.release batch 0;
  Alcotest.(check int) "released" 0 (Sim.Batch.active batch);
  Alcotest.(check (option int)) "slot reusable" (Some 0)
    (Sim.Batch.adopt batch (Sim.create config))

(* Random search never consults its observations, so the batched campaign
   driver must reproduce the sequential driver's findings and budget
   ledger bit-for-bit. *)
let test_campaign_lanes_identity () =
  let config =
    {
      (Campaign.default_config Policy.apm Workload.auto_box) with
      Campaign.budget_s = 240.0;
    }
  in
  let run lanes =
    Campaign.run ~lanes config ~strategy:(fun ctx -> Random_search.make ctx)
  in
  let seq = run 1 and batched = run 4 in
  Alcotest.(check int) "same simulations" seq.Campaign.simulations
    batched.Campaign.simulations;
  Alcotest.(check int) "same inferences" seq.Campaign.inferences
    batched.Campaign.inferences;
  Alcotest.(check int) "same findings" (Campaign.unsafe_count seq)
    (Campaign.unsafe_count batched);
  Alcotest.(check (float 0.0)) "same spend"
    seq.Campaign.wall_clock_spent_s batched.Campaign.wall_clock_spent_s;
  Alcotest.(check (list int)) "same finding indices"
    (List.map (fun f -> f.Campaign.simulation_index) seq.Campaign.findings)
    (List.map (fun f -> f.Campaign.simulation_index) batched.Campaign.findings)

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "avis_lanes"
    [
      ( "physics lanes",
        [
          q prop_lane_identity;
          Alcotest.test_case "retire and refill" `Quick test_retire_and_refill;
          Alcotest.test_case "lock-step allocation-free" `Quick
            test_step_all_allocation_free;
        ] );
      ( "sensor lanes",
        [
          Alcotest.test_case "drain identity" `Quick
            test_sensor_lane_drain_identity;
        ] );
      ( "sim batch",
        [
          Alcotest.test_case "lane-bound flight identity" `Quick
            test_sim_batch_identity;
          Alcotest.test_case "adoption refusals" `Quick test_sim_batch_refusals;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "lanes-on = lanes-off" `Quick
            test_campaign_lanes_identity;
        ] );
    ]
