(* Tests for avis_core's data structures: the mode graph, the liveliness
   metric, scenarios, the pruning policies, the budget model, the BFI
   model, report bucketing and the bug-study dataset. *)

open Avis_sensors
open Avis_core

(* Mode graph *)

let simple_graph =
  Mode_graph.build
    ~transitions:
      [
        [ ("Pre-Flight", "Takeoff"); ("Takeoff", "Waypoint 1");
          ("Waypoint 1", "Waypoint 2"); ("Waypoint 2", "Land");
          ("Land", "Disarmed") ];
      ]

let test_graph_nodes () =
  Alcotest.(check int) "six modes" 6 (List.length (Mode_graph.modes simple_graph));
  Alcotest.(check bool) "has takeoff" true (Mode_graph.has_mode simple_graph "Takeoff");
  Alcotest.(check bool) "no rtl" false
    (Mode_graph.has_mode simple_graph "Return To Launch")

let test_graph_distances () =
  Alcotest.(check int) "self" 0 (Mode_graph.distance simple_graph "Takeoff" "Takeoff");
  Alcotest.(check int) "adjacent" 1
    (Mode_graph.distance simple_graph "Takeoff" "Waypoint 1");
  Alcotest.(check int) "two hops" 2
    (Mode_graph.distance simple_graph "Takeoff" "Waypoint 2");
  Alcotest.(check int) "symmetric" 2
    (Mode_graph.distance simple_graph "Waypoint 2" "Takeoff")

let test_graph_diameter () =
  Alcotest.(check int) "chain diameter" 5 (Mode_graph.diameter simple_graph);
  Alcotest.(check int) "unknown mode at diameter" 5
    (Mode_graph.distance simple_graph "Takeoff" "Mystery")

let test_graph_merges_runs () =
  let g =
    Mode_graph.build
      ~transitions:[ [ ("A", "B") ]; [ ("B", "C") ]; [ ("A", "B"); ("B", "C") ] ]
  in
  Alcotest.(check int) "three modes" 3 (List.length (Mode_graph.modes g));
  Alcotest.(check int) "across runs" 2 (Mode_graph.distance g "A" "C")

(* Scenario *)

let id kind index = { Sensor.kind; index }

let fault kind index at = Scenario.sensor_fault (id kind index) at

let test_scenario_canonical () =
  let a = Scenario.of_faults [ fault Sensor.Gps 1 5.0; fault Sensor.Gps 0 2.0 ] in
  let b = Scenario.of_faults [ fault Sensor.Gps 0 2.0; fault Sensor.Gps 1 5.0 ] in
  Alcotest.(check string) "same key" (Scenario.key a) (Scenario.key b);
  Alcotest.(check int) "dedup" 1
    (Scenario.cardinality (Scenario.of_faults [ fault Sensor.Gps 0 1.0; fault Sensor.Gps 0 1.0 ]))

let test_scenario_role_key () =
  (* Two backups of the same kind at the same time are symmetric... *)
  let compass_b1 = Scenario.of_faults [ fault Sensor.Compass 1 3.0 ] in
  let compass_b2 = Scenario.of_faults [ fault Sensor.Compass 1 3.0 ] in
  Alcotest.(check string) "backup symmetric" (Scenario.role_key compass_b1)
    (Scenario.role_key compass_b2);
  (* ...but primary vs backup differ. *)
  let compass_p = Scenario.of_faults [ fault Sensor.Compass 0 3.0 ] in
  Alcotest.(check bool) "primary distinct" true
    (Scenario.role_key compass_p <> Scenario.role_key compass_b1)

let test_scenario_subsumes () =
  let small = Scenario.of_faults [ fault Sensor.Gps 0 2.0 ] in
  let large = Scenario.of_faults [ fault Sensor.Gps 0 2.0; fault Sensor.Battery 0 4.0 ] in
  Alcotest.(check bool) "subset" true (Scenario.subsumes ~smaller:small ~larger:large);
  Alcotest.(check bool) "not superset" false
    (Scenario.subsumes ~smaller:large ~larger:small);
  let shifted = Scenario.of_faults [ fault Sensor.Gps 0 2.5 ] in
  Alcotest.(check bool) "different time" false
    (Scenario.subsumes ~smaller:shifted ~larger:large)

let test_scenario_first_injection () =
  let s = Scenario.of_faults [ fault Sensor.Gps 0 7.0; fault Sensor.Barometer 0 3.0 ] in
  Alcotest.(check (option (float 1e-9))) "earliest" (Some 3.0)
    (Scenario.first_injection_time s);
  Alcotest.(check (option (float 1e-9))) "empty" None
    (Scenario.first_injection_time Scenario.empty);
  let with_link =
    Scenario.of_faults
      [ fault Sensor.Gps 0 7.0; Scenario.link_loss ~at:2.0 ~duration:15.0 ]
  in
  Alcotest.(check (option (float 1e-9))) "link counted" (Some 2.0)
    (Scenario.first_injection_time with_link)

let smaller_sensor_only = Scenario.of_faults [ fault Sensor.Gps 0 2.0 ]

let test_scenario_link_faults () =
  let l = Scenario.link_loss ~at:5.0 ~duration:15.0 in
  let s = Scenario.of_faults [ l; fault Sensor.Gps 0 2.0 ] in
  (* Canonical key is insensitive to listing order and names the outage. *)
  let s' = Scenario.of_faults [ fault Sensor.Gps 0 2.0; l ] in
  Alcotest.(check string) "same key" (Scenario.key s) (Scenario.key s');
  Alcotest.(check bool) "key names link" true
    (let rec contains i =
       i + 4 <= String.length (Scenario.key s)
       && (String.sub (Scenario.key s) i 4 = "link" || contains (i + 1))
     in
     contains 0);
  (* Link losses dedupe like any other fault and have no instance symmetry:
     the role key keeps them verbatim. *)
  Alcotest.(check int) "dedup" 1
    (Scenario.cardinality (Scenario.of_faults [ l; Scenario.link_loss ~at:5.0 ~duration:15.0 ]));
  Alcotest.(check string) "role key verbatim"
    (Scenario.role_key (Scenario.of_faults [ l ]))
    (Scenario.role_key (Scenario.of_faults [ Scenario.link_loss ~at:5.0 ~duration:15.0 ]));
  (* Durations distinguish outages even at the same start time. *)
  Alcotest.(check bool) "duration matters" true
    (Scenario.key (Scenario.of_faults [ l ])
    <> Scenario.key (Scenario.of_faults [ Scenario.link_loss ~at:5.0 ~duration:30.0 ]));
  (* Subsumption sees link faults like sensor faults. *)
  let smaller = Scenario.of_faults [ l ] in
  Alcotest.(check bool) "link subset" true
    (Scenario.subsumes ~smaller ~larger:s);
  Alcotest.(check bool) "not superset" false
    (Scenario.subsumes ~smaller:s ~larger:smaller);
  (* Only sensor faults become injector plans; outages go to the link. *)
  Alcotest.(check int) "plan excludes link" 1 (List.length (Scenario.to_plan s));
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "outages" [ (5.0, 15.0) ]
    (Scenario.link_outages s);
  Alcotest.(check bool) "has link loss" true (Scenario.has_link_loss s);
  Alcotest.(check bool) "sensor-only has none" false
    (Scenario.has_link_loss smaller_sensor_only)

(* Prune *)

let test_prune_dedup () =
  let p = Prune.create () in
  let s = Scenario.of_faults [ fault Sensor.Gps 0 2.0 ] in
  Alcotest.(check bool) "fresh" false (Prune.should_prune p s);
  Prune.note_run p s;
  Alcotest.(check bool) "repeat pruned" true (Prune.should_prune p s)

let test_prune_symmetry () =
  let p = Prune.create () in
  Prune.note_run p (Scenario.of_faults [ fault Sensor.Compass 1 3.0 ]);
  (* A different backup instance of a 3-compass vehicle would map to the
     same role key; with 2 compasses index 1 is the only backup, so test
     with gps backup which shares the role structure. *)
  Alcotest.(check bool) "equivalent role pruned" true
    (Prune.should_prune p (Scenario.of_faults [ fault Sensor.Compass 1 3.0 ]));
  let p' = Prune.create ~symmetry:false () in
  Prune.note_run p' (Scenario.of_faults [ fault Sensor.Compass 1 3.0 ]);
  Alcotest.(check bool) "exact key still pruned without symmetry" true
    (Prune.should_prune p' (Scenario.of_faults [ fault Sensor.Compass 1 3.0 ]))

let test_prune_found_bug () =
  let p = Prune.create () in
  let bug = Scenario.of_faults [ fault Sensor.Gps 0 2.0 ] in
  Prune.note_bug p bug;
  let superset = Scenario.of_faults [ fault Sensor.Gps 0 2.0; fault Sensor.Battery 0 2.0 ] in
  Alcotest.(check bool) "superset pruned" true (Prune.should_prune p superset);
  let p' = Prune.create ~found_bug:false () in
  Prune.note_bug p' bug;
  Alcotest.(check bool) "policy off" false (Prune.should_prune p' superset)

let test_prune_formulas () =
  (* Fig. 6: three compasses, 21 -> 5. *)
  Alcotest.(check int) "N(2^N-1) for 3" 21 (Prune.unpruned_scenarios ~instances:3);
  Alcotest.(check int) "2N-1 for 3" 5 (Prune.symmetry_scenarios ~instances:3);
  Alcotest.(check int) "2N-1 for 1" 1 (Prune.symmetry_scenarios ~instances:1)

let prop_symmetry_saves =
  QCheck.Test.make ~name:"symmetry always reduces for N >= 2" ~count:20
    (QCheck.int_range 2 12)
    (fun n ->
      Prune.symmetry_scenarios ~instances:n < Prune.unpruned_scenarios ~instances:n)

(* Budget *)

let test_budget_accounting () =
  let b = Budget.create ~speedup:10.0 ~total_s:100.0 () in
  Budget.charge_simulation b ~sim_seconds:100.0;
  Alcotest.(check (float 1e-9)) "sim cost scaled" 10.0 (Budget.spent_s b);
  Budget.charge_inference b 5.0;
  Alcotest.(check (float 1e-9)) "inference full price" 15.0 (Budget.spent_s b);
  Alcotest.(check bool) "not exhausted" false (Budget.exhausted b);
  Alcotest.(check bool) "can afford" true (Budget.can_afford_run b ~sim_seconds:800.0);
  Alcotest.(check bool) "cannot afford" false (Budget.can_afford_run b ~sim_seconds:900.0);
  Budget.charge_inference b 85.0;
  Alcotest.(check bool) "exhausted" true (Budget.exhausted b);
  Alcotest.(check int) "counters" 1 (Budget.simulations_run b);
  Alcotest.(check int) "inferences" 2 (Budget.inferences_run b)

let test_budget_rejects_nonpositive () =
  Alcotest.check_raises "bad budget"
    (Invalid_argument "Budget.create: non-positive budget") (fun () ->
      ignore (Budget.create ~total_s:0.0 ()))

let test_budget_overshoot_clamped () =
  let b = Budget.create ~speedup:1.0 ~total_s:10.0 () in
  Budget.charge_simulation b ~sim_seconds:25.0;
  Alcotest.(check (float 1e-9)) "simulation saturates at total" 10.0
    (Budget.spent_s b);
  Alcotest.(check bool) "exhausted" true (Budget.exhausted b);
  Alcotest.(check (float 1e-9)) "nothing left" 0.0 (Budget.remaining_s b);
  let b' = Budget.create ~speedup:1.0 ~total_s:10.0 () in
  Budget.charge_inference b' 9.0;
  Budget.charge_inference b' 9.0;
  Alcotest.(check (float 1e-9)) "inference saturates at total" 10.0
    (Budget.spent_s b')

let test_budget_zero_cost_inference_floored () =
  let b = Budget.create ~speedup:1.0 ~total_s:1.0 () in
  Budget.charge_inference b 0.0;
  Alcotest.(check (float 1e-12)) "zero cost still charged"
    Budget.min_inference_s (Budget.spent_s b);
  Budget.charge_inference b (-5.0);
  Alcotest.(check (float 1e-12)) "negative cost floored too"
    (2.0 *. Budget.min_inference_s) (Budget.spent_s b);
  Alcotest.(check int) "both counted" 2 (Budget.inferences_run b)

let test_budget_afford_matches_charge () =
  (* What can_afford_run approves must be exactly what charge_simulation
     books: an exact fit drains the budget to zero, not past it. *)
  let b = Budget.create ~speedup:2.0 ~total_s:10.0 () in
  Alcotest.(check bool) "exact fit affordable" true
    (Budget.can_afford_run b ~sim_seconds:20.0);
  Budget.charge_simulation b ~sim_seconds:20.0;
  Alcotest.(check (float 1e-9)) "charged what was approved" 10.0
    (Budget.spent_s b);
  Alcotest.(check bool) "now exhausted" true (Budget.exhausted b);
  Alcotest.(check bool) "nothing further affordable" false
    (Budget.can_afford_run b ~sim_seconds:0.1)

(* BFI model *)

let test_bfi_mode_class () =
  Alcotest.(check string) "waypoint collapsed" "Waypoint"
    (Bfi_model.mode_class_of_label "Waypoint 7");
  Alcotest.(check string) "others kept" "Land" (Bfi_model.mode_class_of_label "Land")

let test_bfi_model_distribution () =
  let model = Bfi_model.default () in
  let features mode whole =
    { Bfi_model.mode_class = mode; kinds = [ Sensor.Gps ];
      whole_kind_lost = whole; multiplicity = 1 }
  in
  let cruise = Bfi_model.predict model (features "Waypoint" true) in
  let takeoff = Bfi_model.predict model (features "Takeoff" true) in
  Alcotest.(check bool) "cruise scored higher" true (cruise > takeoff);
  Alcotest.(check bool) "cruise approved" true (cruise > 0.5);
  Alcotest.(check bool) "takeoff rejected" true (takeoff < 0.5);
  let multi =
    Bfi_model.predict model
      { Bfi_model.mode_class = "Waypoint"; kinds = [ Sensor.Gps; Sensor.Battery ];
        whole_kind_lost = true; multiplicity = 2 }
  in
  Alcotest.(check bool) "multi-failure rejected" true (multi < 0.5)

let test_bfi_predict_probability_range () =
  let model = Bfi_model.default () in
  List.iter
    (fun mode ->
      let p =
        Bfi_model.predict model
          { Bfi_model.mode_class = mode; kinds = [ Sensor.Compass ];
            whole_kind_lost = false; multiplicity = 1 }
      in
      Alcotest.(check bool) "in (0,1)" true (p > 0.0 && p < 1.0))
    [ "Takeoff"; "Waypoint"; "Manual"; "Land" ]

let test_bfi_train_empty () =
  Alcotest.check_raises "empty corpus"
    (Invalid_argument "Bfi_model.train: empty corpus") (fun () ->
      ignore (Bfi_model.train []))

(* Report buckets *)

let test_report_buckets () =
  Alcotest.(check string) "waypoint" "Waypoint"
    (Report.bucket_label (Report.bucket_of_mode "Waypoint 2"));
  Alcotest.(check string) "preflight folds to takeoff" "Takeoff"
    (Report.bucket_label (Report.bucket_of_mode "Pre-Flight"));
  Alcotest.(check string) "rtl folds to land" "Land"
    (Report.bucket_label (Report.bucket_of_mode "Return To Launch"))

let test_report_mode_at () =
  let transitions =
    [
      { Avis_hinj.Hinj.time = 2.0; from_mode = "Pre-Flight"; to_mode = "Takeoff" };
      { Avis_hinj.Hinj.time = 10.0; from_mode = "Takeoff"; to_mode = "Waypoint 1" };
    ]
  in
  Alcotest.(check string) "before all" "Pre-Flight"
    (Report.mode_at_from_transitions transitions 1.0);
  Alcotest.(check string) "mid" "Takeoff"
    (Report.mode_at_from_transitions transitions 5.0);
  (* A transition at exactly the query time is attributed to the mode
     before it. *)
  Alcotest.(check string) "boundary" "Takeoff"
    (Report.mode_at_from_transitions transitions 10.0)

(* Bug study *)

(* Fault spec parsing (the CLI's --fault syntax) *)

let test_fault_spec_parses () =
  let ok s expect =
    match Fault_spec.parse s with
    | Ok t ->
      Alcotest.(check bool) (s ^ " fields") true (t = expect);
      (* Canonical print round-trips. *)
      Alcotest.(check bool) (s ^ " round-trips") true
        (Fault_spec.parse (Fault_spec.to_string t) = Ok t)
    | Error e -> Alcotest.failf "parse %S failed: %s" s e
  in
  ok "gps@12.5" { Fault_spec.kind = Sensor.Gps; index = None; at = 12.5 };
  ok "gps[0]@12.5" { Fault_spec.kind = Sensor.Gps; index = Some 0; at = 12.5 };
  ok "barometer[2]@0"
    { Fault_spec.kind = Sensor.Barometer; index = Some 2; at = 0.0 }

let test_fault_spec_rejects () =
  let rejects s =
    match Fault_spec.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
  in
  List.iter rejects
    [
      (* Regression: a malformed index used to degrade silently to an
         all-instances fault. *)
      "gps[abc]@5";
      "gps[]@5";
      "gps[1@5";
      "gps[1]]@5";
      "gps[-1]@5";
      (* Times must be finite and non-negative. Regression: "inf" used to
         parse, producing a scenario that can never fire yet still
         charges budget. *)
      "gps@nan";
      "gps@inf";
      "gps@infinity";
      "gps@-inf";
      "gps@1e999";
      "gps@-1";
      "gps@";
      "gps";
      (* Unknown sensor kinds. *)
      "sonar@5";
      "@5";
    ]

(* to_string then parse must reproduce any spec exactly. Times are drawn
   on a grid that "%g" renders losslessly (at most 6 significant digits),
   which covers every time a user could have typed back in. *)
let test_fault_spec_roundtrip_qcheck =
  let gen =
    QCheck.Gen.(
      let* kind =
        oneofl
          Sensor.
            [ Accelerometer; Gyroscope; Compass; Gps; Barometer; Battery ]
      in
      let* index = opt (int_bound 3) in
      let* at =
        oneof
          [
            map (fun d -> float_of_int d /. 100.0) (int_bound 100_000);
            map float_of_int (int_bound 1_000_000);
            return 0.0;
          ]
      in
      return { Fault_spec.kind; index; at })
  in
  QCheck.Test.make ~count:500 ~name:"fault spec to_string/parse round-trips"
    (QCheck.make gen)
    (fun spec ->
      match Fault_spec.parse (Fault_spec.to_string spec) with
      | Ok parsed ->
        if parsed <> spec then
          QCheck.Test.fail_reportf "round-trip changed %S to %S"
            (Fault_spec.to_string spec)
            (Fault_spec.to_string parsed)
        else true
      | Error e ->
        QCheck.Test.fail_reportf "parse %S failed: %s"
          (Fault_spec.to_string spec) e)

let test_bugstudy_totals () =
  Alcotest.(check int) "215 records" 215 Avis_bugstudy.Bugstudy.total;
  Alcotest.(check int) "44 sensor bugs" 44
    (List.length Avis_bugstudy.Bugstudy.sensor_bugs)

let test_bugstudy_findings () =
  let open Avis_bugstudy.Bugstudy in
  Alcotest.(check bool) "finding 1: ~20% sensor" true
    (Float.abs (fraction_by_cause Sensor_fault -. 0.20) < 0.015);
  Alcotest.(check bool) "finding 1: ~40% of crashes" true
    (Float.abs (crash_fraction_by_cause Sensor_fault -. 0.40) < 0.02);
  Alcotest.(check bool) "finding 2: ~47% default-reproducible" true
    (Float.abs (sensor_default_reproducible_fraction -. 0.47) < 0.02);
  Alcotest.(check bool) "finding 3: ~34% serious" true
    (Float.abs (sensor_serious_fraction -. 0.34) < 0.02);
  Alcotest.(check bool) "semantic ~90% asymptomatic" true
    (Float.abs (semantic_asymptomatic_fraction -. 0.90) < 0.02)

let test_bugstudy_symptom_breakdown_sums () =
  let open Avis_bugstudy.Bugstudy in
  let total_sensor =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (symptom_breakdown sensor_bugs)
  in
  Alcotest.(check int) "breakdown covers all" 44 total_sensor

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "avis_core"
    [
      ( "mode graph",
        [
          Alcotest.test_case "nodes" `Quick test_graph_nodes;
          Alcotest.test_case "distances" `Quick test_graph_distances;
          Alcotest.test_case "diameter" `Quick test_graph_diameter;
          Alcotest.test_case "merges runs" `Quick test_graph_merges_runs;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "canonical" `Quick test_scenario_canonical;
          Alcotest.test_case "role key" `Quick test_scenario_role_key;
          Alcotest.test_case "subsumes" `Quick test_scenario_subsumes;
          Alcotest.test_case "first injection" `Quick test_scenario_first_injection;
          Alcotest.test_case "link faults" `Quick test_scenario_link_faults;
        ] );
      ( "prune",
        [
          Alcotest.test_case "dedup" `Quick test_prune_dedup;
          Alcotest.test_case "symmetry" `Quick test_prune_symmetry;
          Alcotest.test_case "found bug" `Quick test_prune_found_bug;
          Alcotest.test_case "formulas" `Quick test_prune_formulas;
          q prop_symmetry_saves;
        ] );
      ( "budget",
        [
          Alcotest.test_case "accounting" `Quick test_budget_accounting;
          Alcotest.test_case "rejects nonpositive" `Quick test_budget_rejects_nonpositive;
          Alcotest.test_case "overshoot clamped" `Quick test_budget_overshoot_clamped;
          Alcotest.test_case "zero-cost inference floored" `Quick test_budget_zero_cost_inference_floored;
          Alcotest.test_case "afford matches charge" `Quick test_budget_afford_matches_charge;
        ] );
      ( "bfi model",
        [
          Alcotest.test_case "mode class" `Quick test_bfi_mode_class;
          Alcotest.test_case "distribution" `Quick test_bfi_model_distribution;
          Alcotest.test_case "probability range" `Quick test_bfi_predict_probability_range;
          Alcotest.test_case "train empty" `Quick test_bfi_train_empty;
        ] );
      ( "report",
        [
          Alcotest.test_case "buckets" `Quick test_report_buckets;
          Alcotest.test_case "mode at" `Quick test_report_mode_at;
        ] );
      ( "fault spec",
        [
          Alcotest.test_case "parses" `Quick test_fault_spec_parses;
          Alcotest.test_case "rejects malformed" `Quick test_fault_spec_rejects;
          q test_fault_spec_roundtrip_qcheck;
        ] );
      ( "bug study",
        [
          Alcotest.test_case "totals" `Quick test_bugstudy_totals;
          Alcotest.test_case "findings" `Quick test_bugstudy_findings;
          Alcotest.test_case "breakdown sums" `Quick test_bugstudy_symptom_breakdown_sums;
        ] );
    ]
