(* Tests for avis_firmware: PID, phases, the bug catalogue and trigger
   windows, driver failover, the failsafe decision table, and the
   controller's basic behaviours. *)

open Avis_geo
open Avis_sensors
open Avis_firmware

let params = Params.default

(* Pid *)

let test_pid_proportional () =
  let pid = Pid.create ~kp:2.0 () in
  Alcotest.(check (float 1e-9)) "kp * error" 6.0 (Pid.update pid ~error:3.0 ~dt:0.01)

let test_pid_integral_accumulates () =
  let pid = Pid.create ~ki:1.0 () in
  let out1 = Pid.update pid ~error:1.0 ~dt:0.5 in
  let out2 = Pid.update pid ~error:1.0 ~dt:0.5 in
  Alcotest.(check (float 1e-9)) "after one step" 0.5 out1;
  Alcotest.(check (float 1e-9)) "after two steps" 1.0 out2

let test_pid_integral_clamped () =
  let pid = Pid.create ~ki:1.0 ~i_limit:0.3 () in
  for _ = 1 to 100 do
    ignore (Pid.update pid ~error:1.0 ~dt:1.0)
  done;
  Alcotest.(check (float 1e-9)) "clamped" 0.3 (Pid.update pid ~error:0.0 ~dt:0.01)

let test_pid_output_limited () =
  let pid = Pid.create ~kp:100.0 ~out_limit:1.0 () in
  Alcotest.(check (float 1e-9)) "limited" 1.0 (Pid.update pid ~error:50.0 ~dt:0.01)

let test_pid_reset () =
  let pid = Pid.create ~ki:1.0 () in
  ignore (Pid.update pid ~error:5.0 ~dt:1.0);
  Pid.reset pid;
  Alcotest.(check (float 1e-9)) "integrator cleared" 0.0
    (Pid.update pid ~error:0.0 ~dt:0.01)

let test_pid_rate_damping () =
  let pid = Pid.create ~kd:2.0 () in
  (* Damping opposes the measured rate. *)
  Alcotest.(check (float 1e-9)) "-kd * rate" (-6.0)
    (Pid.update_with_rate pid ~error:0.0 ~rate:3.0 ~dt:0.01)

(* Phase *)

let arb_phase =
  QCheck.make
    ~print:Phase.label
    QCheck.Gen.(
      oneof
        [
          oneofl
            [ Phase.Preflight; Phase.Takeoff; Phase.Manual; Phase.Rtl;
              Phase.Land; Phase.Landed ];
          map (fun i -> Phase.Waypoint i) (int_range 1 20);
        ])

let prop_phase_label_roundtrip =
  QCheck.Test.make ~name:"label/of_label roundtrip" ~count:100 arb_phase
    (fun p -> Phase.of_label (Phase.label p) = Some p)

let prop_phase_code_roundtrip =
  QCheck.Test.make ~name:"code/of_code roundtrip" ~count:100 arb_phase
    (fun p -> Phase.of_code (Phase.to_code p) = Some p)

let test_phase_patterns () =
  Alcotest.(check bool) "any" true (Phase.matches Phase.Any Phase.Land);
  Alcotest.(check bool) "exactly" true
    (Phase.matches (Phase.Exactly Phase.Takeoff) Phase.Takeoff);
  Alcotest.(check bool) "waypoint wildcard" true
    (Phase.matches Phase.Any_waypoint (Phase.Waypoint 3));
  Alcotest.(check bool) "waypoint not land" false
    (Phase.matches Phase.Any_waypoint Phase.Land);
  Alcotest.(check bool) "one_of" true
    (Phase.matches
       (Phase.One_of [ Phase.Exactly Phase.Rtl; Phase.Any_waypoint ])
       Phase.Rtl)

let test_phase_airborne () =
  Alcotest.(check bool) "takeoff airborne" true (Phase.is_airborne Phase.Takeoff);
  Alcotest.(check bool) "preflight not" false (Phase.is_airborne Phase.Preflight);
  Alcotest.(check bool) "landed not" false (Phase.is_airborne Phase.Landed)

(* Bug catalogue *)

let test_bug_catalogue_counts () =
  Alcotest.(check int) "15 bugs" 15 (List.length Bug.all);
  Alcotest.(check int) "6 unknown apm" 6 (List.length (Bug.unknown_bugs Bug.Ardupilot));
  Alcotest.(check int) "4 unknown px4" 4 (List.length (Bug.unknown_bugs Bug.Px4));
  Alcotest.(check int) "4 known apm" 4 (List.length (Bug.known_bugs Bug.Ardupilot));
  Alcotest.(check int) "1 known px4" 1 (List.length (Bug.known_bugs Bug.Px4))

let test_bug_report_lookup () =
  Alcotest.(check bool) "by report" true (Bug.of_report "APM-16682" = Some Bug.Apm_16682);
  Alcotest.(check bool) "unknown" true (Bug.of_report "APM-0" = None)

let test_bug_registry_defaults () =
  let r = Bug.registry Bug.Ardupilot in
  Alcotest.(check bool) "unknown enabled" true (Bug.enabled r Bug.Apm_16682);
  Alcotest.(check bool) "known disabled" false (Bug.enabled r Bug.Apm_4455);
  Bug.enable r Bug.Apm_4455;
  Alcotest.(check bool) "enable works" true (Bug.enabled r Bug.Apm_4455);
  Bug.disable r Bug.Apm_4455;
  Alcotest.(check bool) "disable works" false (Bug.enabled r Bug.Apm_4455)

let ctx_with_transitions transitions time =
  { Failsafe.phase = Phase.Land; phase_entered_at = 0.0; transitions; time;
    gcs_lost_at = None }

let test_bug_window_matching () =
  let info = Bug.info Bug.Apm_16682 in
  (* Window: Rtl -> Land, 1 s before to 6 s after. *)
  let transitions = [ (30.0, Phase.Rtl, Phase.Land) ] in
  let ctx = ctx_with_transitions transitions 40.0 in
  Alcotest.(check bool) "inside (after)" true
    (Failsafe.bug_window_matches info ~ctx ~failed_at:33.0);
  Alcotest.(check bool) "inside (before)" true
    (Failsafe.bug_window_matches info ~ctx ~failed_at:29.5);
  Alcotest.(check bool) "outside late" false
    (Failsafe.bug_window_matches info ~ctx ~failed_at:37.0);
  Alcotest.(check bool) "outside early" false
    (Failsafe.bug_window_matches info ~ctx ~failed_at:20.0);
  (* A Land entered from Waypoint (a failsafe landing) does not match. *)
  let ctx' = ctx_with_transitions [ (30.0, Phase.Waypoint 2, Phase.Land) ] 40.0 in
  Alcotest.(check bool) "wrong from-phase" false
    (Failsafe.bug_window_matches info ~ctx:ctx' ~failed_at:33.0)

(* Drivers *)

let make_drivers plan =
  let rng = Avis_util.Rng.create 3 in
  let suite = Suite.create ~rng () in
  let hinj = Avis_hinj.Hinj.create ~plan () in
  let drivers = Drivers.create ~params ~suite ~hinj () in
  let world = Avis_physics.World.create ~position:(Vec3.make 0.0 0.0 10.0) () in
  (drivers, world)

let sample_until drivers world time =
  let dt = 0.004 in
  let steps = int_of_float (time /. dt) in
  for i = 1 to steps do
    Drivers.sample drivers world ~time:(float_of_int i *. dt)
  done

let test_drivers_healthy () =
  let drivers, world = make_drivers [] in
  sample_until drivers world 0.5;
  List.iter
    (fun kind ->
      Alcotest.(check bool) (Sensor.kind_to_string kind ^ " healthy") true
        (Drivers.kind_healthy drivers kind))
    Sensor.all_kinds

let test_drivers_failover () =
  let plan = [ { Avis_hinj.Hinj.sensor = { Sensor.kind = Sensor.Gps; index = 0 }; at = 0.1 } ] in
  let drivers, world = make_drivers plan in
  sample_until drivers world 0.5;
  let status = Drivers.status drivers Sensor.Gps in
  Alcotest.(check bool) "still healthy" true status.Drivers.healthy;
  Alcotest.(check (option int)) "failed over to backup" (Some 1)
    status.Drivers.active_instance;
  Alcotest.(check bool) "primary failure recorded" true
    (status.Drivers.primary_failed_at <> None)

let test_drivers_kind_loss () =
  let plan =
    List.init 2 (fun index ->
        { Avis_hinj.Hinj.sensor = { Sensor.kind = Sensor.Gps; index }; at = 0.1 })
  in
  let drivers, world = make_drivers plan in
  sample_until drivers world 0.5;
  let status = Drivers.status drivers Sensor.Gps in
  Alcotest.(check bool) "kind lost" false status.Drivers.healthy;
  Alcotest.(check bool) "loss time recorded" true (status.Drivers.kind_failed_at <> None);
  Alcotest.(check bool) "stale reading kept" true (status.Drivers.stale <> None)

(* Failsafe decision table *)

let directives_for ?(bugs = Bug.registry ~enabled:[] Bug.Ardupilot)
    ?(policy = Policy.apm) ?(transitions = [ (2.0, Phase.Preflight, Phase.Takeoff) ])
    ?(phase = Phase.Takeoff) ?gcs_lost_at ?(params = params) plan time =
  let drivers, world = make_drivers plan in
  sample_until drivers world time;
  let ctx =
    { Failsafe.phase; phase_entered_at = 2.0; transitions; time;
      gcs_lost_at }
  in
  Failsafe.evaluate ~policy ~params ~bugs ~drivers ~ctx ~battery_low:false

let fail_kind ?(n = 2) kind at =
  List.init n (fun index -> { Avis_hinj.Hinj.sensor = { Sensor.kind; index }; at })

let test_failsafe_no_failures () =
  let d = directives_for [] 1.0 in
  Alcotest.(check bool) "no request" true (d.Failsafe.phase_request = None);
  Alcotest.(check bool) "normal alt" true (d.Failsafe.alt_mode = Estimator.Alt_fused);
  Alcotest.(check bool) "no bugs" true (d.Failsafe.triggered_bugs = [])

let test_failsafe_guarded_baro () =
  let d = directives_for (fail_kind Sensor.Barometer 0.1) 1.0 in
  Alcotest.(check bool) "gps fallback" true (d.Failsafe.alt_mode = Estimator.Alt_gps_fused);
  Alcotest.(check bool) "gentle" true d.Failsafe.gentle_descent

let test_failsafe_flawed_baro_16027 () =
  let bugs = Bug.registry ~enabled:[ Bug.Apm_16027 ] Bug.Ardupilot in
  let d = directives_for ~bugs (fail_kind Sensor.Barometer 2.2) 3.0 in
  Alcotest.(check bool) "frozen alt" true (d.Failsafe.alt_mode = Estimator.Alt_frozen);
  Alcotest.(check bool) "triggered" true
    (List.mem Bug.Apm_16027 d.Failsafe.triggered_bugs)

let test_failsafe_flawed_outside_window () =
  (* Same bug enabled, failure far from the Pre-Flight -> Takeoff window:
     the guarded path must run instead. *)
  let bugs = Bug.registry ~enabled:[ Bug.Apm_16027 ] Bug.Ardupilot in
  let d =
    directives_for ~bugs
      ~transitions:[ (2.0, Phase.Preflight, Phase.Takeoff); (10.0, Phase.Takeoff, Phase.Waypoint 1) ]
      ~phase:(Phase.Waypoint 1)
      (fail_kind Sensor.Barometer 15.0) 16.0
  in
  Alcotest.(check bool) "guarded fallback" true
    (d.Failsafe.alt_mode = Estimator.Alt_gps_fused);
  Alcotest.(check bool) "not triggered" true (d.Failsafe.triggered_bugs = [])

let test_failsafe_gps_policy_difference () =
  let apm = directives_for ~policy:Policy.apm (fail_kind Sensor.Gps 0.1) 1.0 in
  let px4 = directives_for ~policy:Policy.px4 (fail_kind Sensor.Gps 0.1) 1.0 in
  Alcotest.(check bool) "apm lands" true
    (apm.Failsafe.phase_request = Some Failsafe.Fs_land);
  Alcotest.(check bool) "px4 altitude-holds" true
    (px4.Failsafe.phase_request = Some Failsafe.Fs_altitude_hold);
  Alcotest.(check bool) "dead reckoning" true
    (apm.Failsafe.pos_mode = Estimator.Pos_dead_reckon)

let test_failsafe_battery_without_gps () =
  let d = directives_for (fail_kind ~n:1 Sensor.Battery 0.1) 1.0 in
  Alcotest.(check bool) "rtl" true (d.Failsafe.phase_request = Some Failsafe.Fs_rtl)

let test_failsafe_battery_and_gps_guarded () =
  let plan = fail_kind Sensor.Gps 0.1 @ fail_kind ~n:1 Sensor.Battery 0.2 in
  let d = directives_for plan 1.0 in
  (* Without the 13291 flaw, no position -> land, not RTL. *)
  Alcotest.(check bool) "land wins" true (d.Failsafe.phase_request = Some Failsafe.Fs_land)

let test_failsafe_13291_flawed () =
  let bugs = Bug.registry ~enabled:[ Bug.Px4_13291 ] Bug.Px4 in
  let transitions =
    [ (2.0, Phase.Preflight, Phase.Takeoff); (10.0, Phase.Takeoff, Phase.Waypoint 1) ]
  in
  let plan = fail_kind Sensor.Gps 12.0 @ fail_kind ~n:1 Sensor.Battery 14.0 in
  let d =
    directives_for ~bugs ~policy:Policy.px4 ~transitions ~phase:(Phase.Waypoint 1)
      plan 15.0
  in
  Alcotest.(check bool) "flawed RTL without position" true
    (d.Failsafe.phase_request = Some Failsafe.Fs_rtl);
  Alcotest.(check bool) "triggered" true
    (List.mem Bug.Px4_13291 d.Failsafe.triggered_bugs)

let test_failsafe_px4_takeoff_gates () =
  let bugs = Bug.registry ~enabled:[ Bug.Px4_17181 ] Bug.Px4 in
  let d =
    directives_for ~bugs ~policy:Policy.px4 (fail_kind Sensor.Barometer 2.2) 3.0
  in
  Alcotest.(check bool) "no alt source" true (d.Failsafe.alt_mode = Estimator.Alt_none);
  Alcotest.(check bool) "gate closed" false d.Failsafe.takeoff_gate_open;
  (* The ArduPilot personality has no gates. *)
  let bugs_apm = Bug.registry ~enabled:[] Bug.Ardupilot in
  let d' = directives_for ~bugs:bugs_apm (fail_kind Sensor.Barometer 2.2) 3.0 in
  Alcotest.(check bool) "apm gate open" true d'.Failsafe.takeoff_gate_open

(* GCS datalink loss: ArduPilot's action is fixed (RTL), PX4 resolves
   NAV_DLL_ACT from the live parameter set every cycle. *)

let test_failsafe_gcs_loss_apm_rtl () =
  let d = directives_for ~gcs_lost_at:8.0 [] 10.0 in
  Alcotest.(check bool) "apm returns to launch" true
    (d.Failsafe.phase_request = Some Failsafe.Fs_rtl);
  (* Healthy link: no request. *)
  let d' = directives_for [] 10.0 in
  Alcotest.(check bool) "healthy link flies on" true
    (d'.Failsafe.phase_request = None)

let test_failsafe_gcs_loss_without_gps_lands () =
  (* Blind RTL is never taken: with the whole GPS kind also lost the RTL
     degrades to a landing, exactly like the battery failsafe. *)
  let d = directives_for ~gcs_lost_at:8.0 (fail_kind Sensor.Gps 0.1) 10.0 in
  Alcotest.(check bool) "land, not blind RTL" true
    (d.Failsafe.phase_request = Some Failsafe.Fs_land)

let test_failsafe_gcs_loss_px4_nav_dll_act () =
  let with_code code =
    directives_for ~policy:Policy.px4
      ~bugs:(Bug.registry ~enabled:[] Bug.Px4)
      ~gcs_lost_at:8.0
      ~params:{ params with Params.gcs_loss_action_code = code }
      [] 10.0
  in
  Alcotest.(check bool) "default (2) RTL" true
    ((directives_for ~policy:Policy.px4
        ~bugs:(Bug.registry ~enabled:[] Bug.Px4)
        ~gcs_lost_at:8.0 [] 10.0)
       .Failsafe.phase_request = Some Failsafe.Fs_rtl);
  Alcotest.(check bool) "0 disabled" true
    ((with_code 0.0).Failsafe.phase_request = None);
  Alcotest.(check bool) "1 altitude hold" true
    ((with_code 1.0).Failsafe.phase_request = Some Failsafe.Fs_altitude_hold);
  Alcotest.(check bool) "3 land" true
    ((with_code 3.0).Failsafe.phase_request = Some Failsafe.Fs_land)

(* Control *)

let make_control () =
  Control.create ~params ~airframe:Avis_physics.Airframe.iris ()

let test_control_idle_zeros () =
  let control = make_control () in
  let est = Estimator.create ~params () in
  let demand =
    { Control.pos_target = None; velocity_ff = Vec3.zero; climb_demand = 0.0;
      yaw_target = 0.0; idle = true; max_speed = None; level_hold = false;
      open_loop_descent = false }
  in
  let out = Control.step control est demand ~dt:0.004 in
  Alcotest.(check bool) "all zero" true (Array.for_all (fun c -> c = 0.0) out)

let test_control_hover_balance () =
  let control = make_control () in
  let est = Estimator.create ~params () in
  let demand = Control.hold_demand ~yaw:0.0 ~pos:Vec3.zero in
  let out = Control.step control est demand ~dt:0.004 in
  let hover = Avis_physics.Airframe.hover_throttle Avis_physics.Airframe.iris in
  Array.iter
    (fun c -> Alcotest.(check bool) "near hover" true (Float.abs (c -. hover) < 0.1))
    out

let test_control_outputs_bounded () =
  let control = make_control () in
  let est = Estimator.create ~params () in
  let demand =
    { (Control.hold_demand ~yaw:2.0 ~pos:(Vec3.make 100.0 100.0 50.0)) with
      Control.climb_demand = 10.0 }
  in
  let out = Control.step control est demand ~dt:0.004 in
  Array.iter
    (fun c -> Alcotest.(check bool) "in [0,1]" true (c >= 0.0 && c <= 1.0))
    out

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "avis_firmware"
    [
      ( "pid",
        [
          Alcotest.test_case "proportional" `Quick test_pid_proportional;
          Alcotest.test_case "integral" `Quick test_pid_integral_accumulates;
          Alcotest.test_case "integral clamp" `Quick test_pid_integral_clamped;
          Alcotest.test_case "output limit" `Quick test_pid_output_limited;
          Alcotest.test_case "reset" `Quick test_pid_reset;
          Alcotest.test_case "rate damping" `Quick test_pid_rate_damping;
        ] );
      ( "phase",
        [
          Alcotest.test_case "patterns" `Quick test_phase_patterns;
          Alcotest.test_case "airborne" `Quick test_phase_airborne;
          q prop_phase_label_roundtrip;
          q prop_phase_code_roundtrip;
        ] );
      ( "bugs",
        [
          Alcotest.test_case "catalogue counts" `Quick test_bug_catalogue_counts;
          Alcotest.test_case "report lookup" `Quick test_bug_report_lookup;
          Alcotest.test_case "registry" `Quick test_bug_registry_defaults;
          Alcotest.test_case "window matching" `Quick test_bug_window_matching;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "healthy" `Quick test_drivers_healthy;
          Alcotest.test_case "failover" `Quick test_drivers_failover;
          Alcotest.test_case "kind loss" `Quick test_drivers_kind_loss;
        ] );
      ( "failsafe",
        [
          Alcotest.test_case "no failures" `Quick test_failsafe_no_failures;
          Alcotest.test_case "guarded baro" `Quick test_failsafe_guarded_baro;
          Alcotest.test_case "flawed baro (16027)" `Quick test_failsafe_flawed_baro_16027;
          Alcotest.test_case "outside window guarded" `Quick test_failsafe_flawed_outside_window;
          Alcotest.test_case "gps policy difference" `Quick test_failsafe_gps_policy_difference;
          Alcotest.test_case "battery failsafe" `Quick test_failsafe_battery_without_gps;
          Alcotest.test_case "battery+gps guarded" `Quick test_failsafe_battery_and_gps_guarded;
          Alcotest.test_case "13291 flawed" `Quick test_failsafe_13291_flawed;
          Alcotest.test_case "px4 takeoff gates" `Quick test_failsafe_px4_takeoff_gates;
          Alcotest.test_case "gcs loss apm rtl" `Quick test_failsafe_gcs_loss_apm_rtl;
          Alcotest.test_case "gcs loss without gps lands" `Quick
            test_failsafe_gcs_loss_without_gps_lands;
          Alcotest.test_case "gcs loss px4 nav_dll_act" `Quick
            test_failsafe_gcs_loss_px4_nav_dll_act;
        ] );
      ( "control",
        [
          Alcotest.test_case "idle zeros" `Quick test_control_idle_zeros;
          Alcotest.test_case "hover balance" `Quick test_control_hover_balance;
          Alcotest.test_case "outputs bounded" `Quick test_control_outputs_bounded;
        ] );
    ]
