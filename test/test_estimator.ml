(* Focused tests for the estimator's source-selection modes — the layer the
   reproduced bugs manipulate. Each flawed mode's characteristic behaviour
   is pinned down here at the unit level (the physical consequences are
   covered by the integration suite). *)

open Avis_geo
open Avis_sensors
open Avis_firmware

let params = Params.default

(* A lightweight rig: a world held at a fixed state, drivers over a seeded
   suite, and an estimator we can step. *)
type rig = {
  world : Avis_physics.World.t;
  drivers : Drivers.t;
  est : Estimator.t;
  mutable time : float;
}

let make_rig ?(plan = []) ?(position = Vec3.make 0.0 0.0 10.0) () =
  let world = Avis_physics.World.create ~position () in
  let suite = Suite.create ~rng:(Avis_util.Rng.create 11) () in
  let hinj = Avis_hinj.Hinj.create ~plan () in
  let drivers = Drivers.create ~params ~suite ~hinj () in
  { world; drivers; est = Estimator.create ~params (); time = 0.0 }

let step_rig rig seconds =
  let dt = 0.004 in
  let steps = int_of_float (seconds /. dt) in
  for _ = 1 to steps do
    rig.time <- rig.time +. dt;
    Drivers.sample rig.drivers rig.world ~time:rig.time;
    Estimator.update rig.est rig.drivers ~dt
  done

let fail_kind ?(n = 2) kind at =
  List.init n (fun index -> { Avis_hinj.Hinj.sensor = { Sensor.kind; index }; at })

let test_converges_to_truth () =
  let rig = make_rig () in
  step_rig rig 5.0;
  Alcotest.(check bool) "altitude near 10" true
    (Float.abs (Estimator.altitude rig.est -. 10.0) < 1.0);
  Alcotest.(check bool) "horizontal near origin" true
    (Vec3.norm (Vec3.horizontal (Estimator.position rig.est)) < 2.0);
  Alcotest.(check bool) "level attitude" true
    (Quat.tilt (Estimator.attitude rig.est) < 0.05)

let test_alt_frozen_stops_updating () =
  let rig = make_rig () in
  step_rig rig 3.0;
  let before = Estimator.altitude rig.est in
  Estimator.set_alt_mode rig.est Estimator.Alt_frozen;
  (* Move the world upward; the frozen estimate must not follow. *)
  Avis_physics.Rigid_body.set_position
    (Avis_physics.World.body rig.world) (Vec3.make 0.0 0.0 50.0);
  step_rig rig 2.0;
  Alcotest.(check (float 1e-6)) "frozen" before (Estimator.altitude rig.est)

let test_alt_fused_tracks_world () =
  let rig = make_rig () in
  step_rig rig 3.0;
  Avis_physics.Rigid_body.set_position
    (Avis_physics.World.body rig.world) (Vec3.make 0.0 0.0 30.0);
  step_rig rig 3.0;
  Alcotest.(check bool) "tracks" true
    (Float.abs (Estimator.altitude rig.est -. 30.0) < 2.0)

let test_alt_gps_raw_kills_climb_rate () =
  let rig = make_rig () in
  step_rig rig 3.0;
  Estimator.set_alt_mode rig.est Estimator.Alt_gps_raw;
  step_rig rig 2.0;
  (* Fig. 1's flawed mode: the climb-rate estimate is stuck at zero. *)
  Alcotest.(check (float 1e-9)) "no rate source" 0.0 (Estimator.climb_rate rig.est);
  Alcotest.(check bool) "altitude still roughly sane" true
    (Float.abs (Estimator.altitude rig.est -. 10.0) < 8.0);
  Alcotest.(check bool) "vertical degraded" true (Estimator.vertical_degraded rig.est)

let test_alt_none_invalidates () =
  let rig = make_rig () in
  Estimator.set_alt_mode rig.est Estimator.Alt_none;
  Alcotest.(check bool) "invalid" false (Estimator.alt_valid rig.est);
  Estimator.set_alt_mode rig.est Estimator.Alt_fused;
  Alcotest.(check bool) "valid again" true (Estimator.alt_valid rig.est)

let test_att_frozen () =
  let rig = make_rig () in
  step_rig rig 2.0;
  Estimator.set_att_mode rig.est Estimator.Att_frozen;
  let before = Estimator.attitude rig.est in
  Avis_physics.Rigid_body.set_attitude
    (Avis_physics.World.body rig.world)
    (Quat.of_euler ~roll:0.5 ~pitch:0.0 ~yaw:0.0);
  step_rig rig 1.0;
  Alcotest.(check (float 1e-6)) "attitude frozen" 0.0
    (Quat.angle_between before (Estimator.attitude rig.est))

let test_yaw_stale_compass_pins_heading () =
  (* Fail the compass, physically yaw the vehicle, and check the flawed
     stale-compass mode pins the estimate at the old heading while the
     guarded gyro-only mode follows the turn. *)
  let run mode =
    let rig = make_rig ~plan:(fail_kind Sensor.Compass 2.0) () in
    step_rig rig 3.0;
    Estimator.set_yaw_mode rig.est mode;
    (* Rotate the true vehicle by 0.8 rad over a second; the gyro sees it. *)
    Avis_physics.Rigid_body.set_angular_velocity
      (Avis_physics.World.body rig.world) (Vec3.make 0.0 0.0 0.8);
    step_rig rig 1.0;
    Avis_physics.Rigid_body.set_angular_velocity
      (Avis_physics.World.body rig.world) Vec3.zero;
    step_rig rig 4.0;
    Estimator.yaw rig.est
  in
  let gyro_only = run Estimator.Yaw_gyro_only in
  let stale = run Estimator.Yaw_stale_compass in
  Alcotest.(check bool) "gyro-only follows the turn" true (gyro_only > 0.5);
  Alcotest.(check bool) "stale compass pins at zero" true (Float.abs stale < 0.25)

let test_yaw_flipped_diverges () =
  let rig = make_rig ~plan:(fail_kind Sensor.Compass 2.0) () in
  step_rig rig 3.0;
  Estimator.set_yaw_mode rig.est Estimator.Yaw_flipped;
  (* Nudge the estimate away from the stale heading; the flipped correction
     must amplify the error instead of closing it. *)
  Avis_physics.Rigid_body.set_angular_velocity
    (Avis_physics.World.body rig.world) (Vec3.make 0.0 0.0 0.3);
  step_rig rig 1.0;
  Avis_physics.Rigid_body.set_angular_velocity
    (Avis_physics.World.body rig.world) Vec3.zero;
  let early = Float.abs (Estimator.yaw rig.est) in
  step_rig rig 1.0;
  let late = Float.abs (Estimator.yaw rig.est) in
  (* The flipped correction amplifies the error exponentially (before it
     wraps at pi). *)
  Alcotest.(check bool) "error grows" true (late > early +. 0.2 && late > 0.8)

let test_pos_dead_reckon_drifts () =
  let rig = make_rig ~plan:(fail_kind Sensor.Gps 2.0) () in
  step_rig rig 3.0;
  Estimator.set_pos_mode rig.est Estimator.Pos_dead_reckon;
  step_rig rig 20.0;
  let drift = Vec3.norm (Vec3.horizontal (Estimator.position rig.est)) in
  (* Accelerometer bias integrates quadratically: visible but bounded. *)
  Alcotest.(check bool) "some drift accumulates" true (drift > 0.05);
  Alcotest.(check bool) "drift stays finite" true (drift < 100.0)

let test_dead_reckon_age () =
  let rig = make_rig () in
  step_rig rig 1.0;
  Alcotest.(check (float 1e-6)) "zero with gps" 0.0 (Estimator.dead_reckon_age rig.est);
  Estimator.set_pos_mode rig.est Estimator.Pos_dead_reckon;
  step_rig rig 2.0;
  Alcotest.(check bool) "age counts up" true
    (Float.abs (Estimator.dead_reckon_age rig.est -. 2.0) < 0.05);
  Estimator.set_pos_mode rig.est Estimator.Pos_gps;
  step_rig rig 0.1;
  Alcotest.(check (float 1e-6)) "reset on recovery" 0.0
    (Estimator.dead_reckon_age rig.est)

let test_reset_state () =
  let rig = make_rig () in
  step_rig rig 3.0;
  Estimator.reset_state rig.est;
  Alcotest.(check bool) "position zeroed" true
    (Vec3.norm (Estimator.position rig.est) < 1e-9);
  Alcotest.(check bool) "velocity zeroed" true
    (Vec3.norm (Estimator.velocity rig.est) < 1e-9)

let test_heading_validity_flag () =
  let rig = make_rig () in
  Estimator.set_heading_valid rig.est false;
  Alcotest.(check bool) "cleared" false (Estimator.heading_valid rig.est);
  (* A fresh compass correction restores it. *)
  step_rig rig 0.5;
  Alcotest.(check bool) "restored by compass" true (Estimator.heading_valid rig.est)

let () =
  Alcotest.run "avis_estimator"
    [
      ( "sources",
        [
          Alcotest.test_case "converges" `Quick test_converges_to_truth;
          Alcotest.test_case "alt frozen" `Quick test_alt_frozen_stops_updating;
          Alcotest.test_case "alt fused tracks" `Quick test_alt_fused_tracks_world;
          Alcotest.test_case "alt gps raw" `Quick test_alt_gps_raw_kills_climb_rate;
          Alcotest.test_case "alt none" `Quick test_alt_none_invalidates;
          Alcotest.test_case "att frozen" `Quick test_att_frozen;
          Alcotest.test_case "stale compass pins" `Quick test_yaw_stale_compass_pins_heading;
          Alcotest.test_case "flipped yaw diverges" `Quick test_yaw_flipped_diverges;
          Alcotest.test_case "dead reckoning drifts" `Quick test_pos_dead_reckon_drifts;
          Alcotest.test_case "dead reckon age" `Quick test_dead_reckon_age;
          Alcotest.test_case "reset state" `Quick test_reset_state;
          Alcotest.test_case "heading validity" `Quick test_heading_validity_flag;
        ] );
    ]
