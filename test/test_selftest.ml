(* The staged selftest sequencer: every check passes on a healthy build,
   a forced divergence or an unusable store surfaces the right stable
   error code (a failure diagnoses, never raises), and soak mode loops
   without drift on a deterministic build. *)

open Avis_core

let codes =
  [ "DET-FP"; "LANE-ID"; "SNAP-RT"; "STORE-RW"; "CACHE-ID"; "POOL-SANE";
    "ALLOC-0" ]

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_all_checks_pass () =
  let reports = Selftest.run_all () in
  Alcotest.(check (list string)) "staged order is stable" codes
    (List.map (fun (r : Selftest.report) -> r.Selftest.code) reports);
  List.iter
    (fun (r : Selftest.report) ->
      if not r.Selftest.passed then
        Alcotest.failf "%s failed: %s" r.Selftest.code r.Selftest.detail)
    reports;
  Alcotest.(check bool) "all_passed" true (Selftest.all_passed reports);
  let rendered = Avis_util.Table.render (Selftest.table reports) in
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " in the table") true
        (contains rendered code))
    codes

let test_forced_det_fp_failure () =
  (* A perturbed kernel — one part in 10^12 on dt — must trip the
     bit-equality fingerprint, and the failure must come back as a
     diagnosis under the stable code, not an exception. *)
  let perturbed w ~motor_commands ~dt =
    Avis_physics.World.step w ~motor_commands ~dt:(dt *. (1.0 +. 1e-12))
  in
  let r = Selftest.run_check (Selftest.det_fp ~optimized:perturbed ()) in
  Alcotest.(check string) "stable code" "DET-FP" r.Selftest.code;
  Alcotest.(check bool) "fails" false r.Selftest.passed;
  Alcotest.(check bool) "detail names the divergence" true
    (contains r.Selftest.detail "diverges")

let test_forced_store_rw_failure () =
  (* A regular file where the store directory should be: every put is
     swallowed, the round-trip lookup misses, and the check reports it. *)
  let file = Filename.temp_file "avis-selftest" ".not-a-dir" in
  Fun.protect ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
  @@ fun () ->
  let r = Selftest.run_check (Selftest.store_rw ~dir:file ()) in
  Alcotest.(check string) "stable code" "STORE-RW" r.Selftest.code;
  Alcotest.(check bool) "fails" false r.Selftest.passed

let test_checks_never_raise () =
  (* Even a check whose [run] throws must come back as a failed report. *)
  let boom =
    { Selftest.code = "BOOM"; name = "throws"; run = (fun () -> failwith "x") }
  in
  let r = Selftest.run_check boom in
  Alcotest.(check bool) "reported, not raised" false r.Selftest.passed;
  Alcotest.(check bool) "exception rendered in detail" true
    (contains r.Selftest.detail "Failure")

let test_soak_iterations () =
  let progressed = ref [] in
  let s =
    Selftest.soak ~iterations:4
      ~progress:(fun i -> progressed := i :: !progressed)
      ~minutes:0.0 ()
  in
  Alcotest.(check int) "exactly the asked iterations" 4 s.Selftest.iterations;
  Alcotest.(check (list int)) "progress ticks 1-based, in order" [ 1; 2; 3; 4 ]
    (List.rev !progressed);
  (* Iteration 4 revisits seed 1, so at least one same-seed comparison
     happened — and on a deterministic build it must not drift. *)
  Alcotest.(check (list string)) "no drift" [] s.Selftest.drift

let () =
  Alcotest.run "avis_selftest"
    [
      ( "staged checks",
        [
          Alcotest.test_case "all pass on a healthy build" `Slow
            test_all_checks_pass;
          Alcotest.test_case "forced DET-FP failure" `Quick
            test_forced_det_fp_failure;
          Alcotest.test_case "forced STORE-RW failure" `Quick
            test_forced_store_rw_failure;
          Alcotest.test_case "a throwing check is a failed report" `Quick
            test_checks_never_raise;
        ] );
      ( "soak",
        [ Alcotest.test_case "rotating seeds, no drift" `Slow test_soak_iterations ] );
    ]
