(* The persistent checkpoint store and the binary snapshot codecs under it.

   Three layers, in dependency order: (1) [Sim.to_bytes]/[of_bytes] and the
   stepper codec must round-trip float-for-float — calm, windy, and with a
   fault already active; (2) [Checkpoint_store] must serve exactly what was
   put, treat every corruption as a miss, respect fingerprints and the byte
   budget; (3) a fresh [Prefix_cache] sharing a store directory must serve
   scenarios from disk with outcomes bit-identical to cold runs, even after
   the directory is vandalised. *)

open Avis_geo
open Avis_sensors
open Avis_firmware
open Avis_sitl
open Avis_core

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)
(* ------------------------------------------------------------------ *)

let temp_counter = ref 0

let temp_dir () =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "avis-test-store-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let windy_environment () =
  Avis_physics.Environment.create
    ~wind:
      (Some
         {
           Avis_physics.Environment.steady = Vec3.make 2.5 1.0 0.0;
           gust_stddev = 0.6;
           gust_correlation_s = 2.0;
         })
    ()

let sim_config ?(seed = 42) ?environment workload policy =
  let base = Sim.default_config policy in
  {
    base with
    Sim.seed;
    max_duration = workload.Workload.nominal_duration +. 60.0;
    environment =
      (match environment with
      | Some _ as e -> e
      | None -> workload.Workload.environment ());
  }

let cold_run ?seed ?environment ?(plan = []) workload policy =
  let sim = Sim.create ~plan (sim_config ?seed ?environment workload policy) in
  let passed = Workload.execute workload sim in
  Sim.outcome sim ~workload_passed:passed

(* The trace compared by IEEE-754 bit patterns: [=] on floats would call
   0.0 and -0.0 equal and nan unequal to itself; bits are the honest
   notion of "identical flight". *)
let trace_bits (o : Sim.outcome) =
  Array.to_list (Trace.samples o.Sim.trace)
  |> List.concat_map (fun (s : Trace.sample) ->
         [
           Int64.bits_of_float s.Trace.time;
           Int64.bits_of_float s.Trace.position.Vec3.x;
           Int64.bits_of_float s.Trace.position.Vec3.y;
           Int64.bits_of_float s.Trace.position.Vec3.z;
           Int64.bits_of_float s.Trace.acceleration.Vec3.x;
           Int64.bits_of_float s.Trace.acceleration.Vec3.y;
           Int64.bits_of_float s.Trace.acceleration.Vec3.z;
         ])

let fingerprint (o : Sim.outcome) =
  ( trace_bits o,
    Array.to_list (Array.map (fun (s : Trace.sample) -> s.Trace.mode)
      (Trace.samples o.Sim.trace)),
    o.Sim.crash,
    o.Sim.fence_breached,
    o.Sim.workload_passed,
    o.Sim.transitions,
    o.Sim.triggered_bugs,
    Int64.bits_of_float o.Sim.duration,
    o.Sim.sensor_reads )

let check_same_outcome msg a b =
  Alcotest.(check bool) msg true (fingerprint a = fingerprint b)

let fail_kind ?(n = 2) kind at =
  List.init n (fun index -> { Avis_hinj.Hinj.sensor = { Sensor.kind; index }; at })

let paused_run ?environment ?(plan = []) workload policy ~until =
  let sim = Sim.create ~plan (sim_config ?environment workload policy) in
  let st = Workload.Stepper.create workload in
  (match Workload.Stepper.run st sim ~until with
  | Workload.Stepper.Running -> ()
  | Workload.Stepper.Done _ -> Alcotest.fail "run finished before pause");
  (sim, st)

let finish ~plan sim_snap stepper_snap =
  let sim = Sim.restore ~plan sim_snap in
  let st = Workload.Stepper.restore stepper_snap in
  let passed =
    match Workload.Stepper.run st sim ~until:infinity with
    | Workload.Stepper.Done p -> p
    | Workload.Stepper.Running -> false
  in
  Sim.outcome sim ~workload_passed:passed

(* ------------------------------------------------------------------ *)
(* Snapshot codec round-trips                                           *)
(* ------------------------------------------------------------------ *)

(* Pause mid-flight, push both snapshots through their byte codecs, and
   finish the flight from the decoded state with the fault plan
   substituted in. The decoded run must be bit-identical to the cold
   faulty run, and the codec must be canonical (decode; re-encode yields
   the same bytes). *)
let roundtrip_case ?environment ~pause_at ~fault_at workload policy =
  let plan = fail_kind Sensor.Gps fault_at in
  let cold = cold_run ?environment ~plan workload policy in
  let sim, st = paused_run ?environment ~plan workload policy ~until:pause_at in
  let sim_bytes = Sim.to_bytes (Sim.snapshot sim) in
  let st_bytes = Workload.Stepper.to_bytes (Workload.Stepper.snapshot st) in
  let sim_snap = Sim.of_bytes sim_bytes in
  let st_snap = Workload.Stepper.of_bytes st_bytes in
  Alcotest.(check bool) "sim codec canonical" true
    (String.equal (Sim.to_bytes sim_snap) sim_bytes);
  Alcotest.(check bool) "stepper codec canonical" true
    (String.equal (Workload.Stepper.to_bytes st_snap) st_bytes);
  let decoded = finish ~plan sim_snap st_snap in
  check_same_outcome "decoded snapshot = cold run" cold decoded

let test_roundtrip_calm () =
  roundtrip_case ~pause_at:12.0 ~fault_at:20.0 Workload.quickstart Policy.apm

let test_roundtrip_windy () =
  roundtrip_case
    ~environment:(windy_environment ())
    ~pause_at:15.0 ~fault_at:25.0 Workload.quickstart Policy.apm

let test_roundtrip_mid_fault () =
  (* Pause *after* the injection: the snapshot carries a failed sensor,
     active bug state and a partially degraded estimator. *)
  roundtrip_case ~pause_at:27.0 ~fault_at:20.0 Workload.quickstart Policy.apm

let test_roundtrip_auto_box_px4 () =
  roundtrip_case ~pause_at:30.0 ~fault_at:45.0 Workload.auto_box Policy.px4

let qcheck_roundtrip =
  QCheck.Test.make ~count:6 ~name:"sim+stepper codec round-trips at any pause"
    QCheck.(pair (float_range 2.0 20.0) (float_range 0.0 1.0))
    (fun (pause_at, frac) ->
      let fault_at = pause_at +. ((40.0 -. pause_at) *. frac) +. 1.0 in
      let workload = Workload.quickstart and policy = Policy.apm in
      let plan = fail_kind ~n:1 Sensor.Barometer fault_at in
      let cold = cold_run ~plan workload policy in
      let sim, st = paused_run ~plan workload policy ~until:pause_at in
      let sim_bytes = Sim.to_bytes (Sim.snapshot sim) in
      let st_bytes = Workload.Stepper.to_bytes (Workload.Stepper.snapshot st) in
      let sim_snap = Sim.of_bytes sim_bytes in
      let st_snap = Workload.Stepper.of_bytes st_bytes in
      String.equal (Sim.to_bytes sim_snap) sim_bytes
      && String.equal (Workload.Stepper.to_bytes st_snap) st_bytes
      && fingerprint (finish ~plan sim_snap st_snap) = fingerprint cold)

let test_of_bytes_rejects_garbage () =
  (match Sim.of_bytes "" with
  | exception Avis_util.Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "empty input decoded");
  let sim, _ = paused_run Workload.quickstart Policy.apm ~until:5.0 in
  let bytes = Sim.to_bytes (Sim.snapshot sim) in
  let truncated = String.sub bytes 0 (String.length bytes / 2) in
  (match Sim.of_bytes truncated with
  | exception Avis_util.Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated snapshot decoded")

(* ------------------------------------------------------------------ *)
(* Hostile snapshot bytes                                               *)
(* ------------------------------------------------------------------ *)

(* Decoders face arbitrary disk bytes: partial writes, bit rot, other
   processes' files. Whatever the damage, the only observable failure is
   [Codec.Corrupt] — in particular no [Out_of_memory] or [Invalid_argument]
   from allocating a length prefix the buffer cannot possibly back. A
   damaged buffer that still decodes cleanly is fine (a flipped float bit
   is just a different float); raising anything else is the bug. *)

let exemplar_bytes =
  lazy
    (let sim, st = paused_run Workload.quickstart Policy.apm ~until:8.0 in
     ( Sim.to_bytes (Sim.snapshot sim),
       Workload.Stepper.to_bytes (Workload.Stepper.snapshot st) ))

let decoders =
  [
    ("Sim.of_bytes", fun s -> ignore (Sim.of_bytes s));
    ("Stepper.of_bytes", fun s -> ignore (Workload.Stepper.of_bytes s));
    ( "Codec string+floats",
      fun s ->
        let r = Avis_util.Codec.reader s in
        ignore (Avis_util.Codec.r_bytes r);
        ignore (Avis_util.Codec.r_float_array r) );
  ]

let only_corrupt bytes =
  List.for_all
    (fun (name, decode) ->
      match decode bytes with
      | () -> true
      | exception Avis_util.Codec.Corrupt _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "%s raised %s, not Corrupt" name
          (Printexc.to_string e))
    decoders

let qcheck_fuzz_truncated =
  QCheck.Test.make ~count:60 ~name:"truncated snapshot bytes: only Corrupt"
    QCheck.(pair (float_range 0.0 1.0) bool)
    (fun (frac, stepper) ->
      let sim_b, st_b = Lazy.force exemplar_bytes in
      let bytes = if stepper then st_b else sim_b in
      let cut =
        min (String.length bytes - 1)
          (int_of_float (frac *. float_of_int (String.length bytes)))
      in
      only_corrupt (String.sub bytes 0 cut))

let qcheck_fuzz_bitflip =
  QCheck.Test.make ~count:120 ~name:"bit-flipped snapshot bytes: only Corrupt"
    QCheck.(triple (float_range 0.0 1.0) (int_range 0 7) bool)
    (fun (frac, bit, stepper) ->
      let sim_b, st_b = Lazy.force exemplar_bytes in
      let bytes = if stepper then st_b else sim_b in
      let i =
        min (String.length bytes - 1)
          (int_of_float (frac *. float_of_int (String.length bytes)))
      in
      let b = Bytes.of_string bytes in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      only_corrupt (Bytes.to_string b))

let qcheck_fuzz_random =
  QCheck.Test.make ~count:120 ~name:"random buffers: only Corrupt"
    QCheck.(string_gen_of_size (Gen.int_range 0 512) Gen.char)
    only_corrupt

(* ------------------------------------------------------------------ *)
(* Checkpoint store                                                     *)
(* ------------------------------------------------------------------ *)

let make_store ?(fingerprint = "fp") ?store_mb ~dir () =
  Checkpoint_store.create ~fingerprint ?store_mb ~dir ~config_key:"cfg" ()

let put store ~fault_key ~time payload =
  Checkpoint_store.put store ~fault_key ~time ~payload:(lazy payload)

let test_store_put_lookup () =
  with_temp_dir @@ fun dir ->
  let store = make_store ~dir () in
  put store ~fault_key:"" ~time:10.0 "clean@10";
  put store ~fault_key:"" ~time:20.0 "clean@20";
  put store ~fault_key:"gps@x" ~time:15.0 "faulty@15";
  (match Checkpoint_store.lookup store ~fault_key:"" ~before:15.0 with
  | Some (t, p) ->
    Alcotest.(check (float 0.0)) "time" 10.0 t;
    Alcotest.(check string) "payload" "clean@10" p
  | None -> Alcotest.fail "expected clean@10");
  (match Checkpoint_store.lookup store ~fault_key:"" ~before:infinity with
  | Some (t, _) -> Alcotest.(check (float 0.0)) "latest first" 20.0 t
  | None -> Alcotest.fail "expected clean@20");
  (* [before] is strict: a checkpoint at exactly the injection time could
     already contain the fault's first effects. *)
  Alcotest.(check bool) "strictly before" true
    (Checkpoint_store.lookup store ~fault_key:"" ~before:10.0 = None);
  (match Checkpoint_store.lookup store ~fault_key:"gps@x" ~before:infinity with
  | Some (_, p) -> Alcotest.(check string) "keys are isolated" "faulty@15" p
  | None -> Alcotest.fail "expected faulty@15");
  Alcotest.(check bool) "unknown key" true
    (Checkpoint_store.lookup store ~fault_key:"other" ~before:infinity = None)

let test_store_put_is_idempotent_and_lazy () =
  with_temp_dir @@ fun dir ->
  let store = make_store ~dir () in
  put store ~fault_key:"" ~time:10.0 "first";
  let forced = ref false in
  Checkpoint_store.put store ~fault_key:"" ~time:10.0
    ~payload:
      (lazy
        (forced := true;
         "second"));
  Alcotest.(check bool) "existing file skips serialisation" false !forced;
  match Checkpoint_store.lookup store ~fault_key:"" ~before:infinity with
  | Some (_, p) -> Alcotest.(check string) "first write wins" "first" p
  | None -> Alcotest.fail "expected a checkpoint"

let ckpt_files dir =
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f -> Filename.check_suffix f ".ckpt")
  |> List.map (Filename.concat dir)

let damage_file ~at path =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string data in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0xFF));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let truncate_file ~len path =
  let ic = open_in_bin path in
  let data = really_input_string ic (min len (in_channel_length ic)) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let test_store_corruption_is_a_miss () =
  let payload = String.init 256 (fun i -> Char.chr (i land 0xFF)) in
  let check_damaged name damage =
    with_temp_dir @@ fun dir ->
    let store = make_store ~dir () in
    put store ~fault_key:"" ~time:10.0 payload;
    (match ckpt_files dir with
    | [ path ] -> damage path
    | files ->
      Alcotest.fail (Printf.sprintf "expected 1 file, got %d" (List.length files)));
    Alcotest.(check bool) (name ^ " is a miss") true
      (Checkpoint_store.lookup store ~fault_key:"" ~before:infinity = None);
    (* The damaged file must be gone, not retried forever. *)
    Alcotest.(check int) (name ^ " deleted") 0 (List.length (ckpt_files dir))
  in
  check_damaged "truncated header" (truncate_file ~len:12);
  check_damaged "truncated payload" (truncate_file ~len:100);
  check_damaged "bit-flipped payload" (damage_file ~at:60);
  check_damaged "bit-flipped checksum" (damage_file ~at:8);
  check_damaged "bad magic" (damage_file ~at:0)

let test_store_corrupt_newest_falls_back_to_older () =
  with_temp_dir @@ fun dir ->
  let store = make_store ~dir () in
  put store ~fault_key:"" ~time:10.0 "older";
  put store ~fault_key:"" ~time:20.0 "newer";
  let newer =
    List.find
      (fun p ->
        let ic = open_in_bin p in
        let d = really_input_string ic (in_channel_length ic) in
        close_in ic;
        String.length d > 29 && String.sub d 29 (String.length d - 29) = "newer")
      (ckpt_files dir)
  in
  damage_file ~at:30 newer;
  match Checkpoint_store.lookup store ~fault_key:"" ~before:infinity with
  | Some (t, p) ->
    Alcotest.(check (float 0.0)) "older served" 10.0 t;
    Alcotest.(check string) "older payload" "older" p
  | None -> Alcotest.fail "expected the older checkpoint"

let test_store_stale_fingerprint_invisible () =
  with_temp_dir @@ fun dir ->
  let old_build = make_store ~fingerprint:"build-a" ~dir () in
  put old_build ~fault_key:"" ~time:10.0 "from build a";
  let new_build = make_store ~fingerprint:"build-b" ~dir () in
  Alcotest.(check bool) "other build's checkpoints invisible" true
    (Checkpoint_store.lookup new_build ~fault_key:"" ~before:infinity = None);
  Checkpoint_store.count_miss new_build;
  let s = Checkpoint_store.stats new_build in
  Alcotest.(check int) "counted as a miss" 1 s.Checkpoint_store.misses;
  Alcotest.(check int) "no hits" 0 s.Checkpoint_store.hits

let test_store_eviction_bounded () =
  with_temp_dir @@ fun dir ->
  let store = make_store ~store_mb:1 ~dir () in
  let big = String.make 700_000 'x' in
  put store ~fault_key:"" ~time:10.0 big;
  put store ~fault_key:"" ~time:20.0 (String.make 700_000 'y');
  let s = Checkpoint_store.stats store in
  Alcotest.(check bool) "bytes within budget" true
    (s.Checkpoint_store.bytes <= 1024 * 1024);
  Alcotest.(check bool) "evicted something" true
    (s.Checkpoint_store.evictions > 0)

let test_store_eviction_mtime_tiebreak () =
  (* Filesystems with 1 s timestamp granularity make equal-mtime
     checkpoints routine. The eviction order must then fall back to path
     order, so the surviving set is a function of the store's contents,
     not of readdir order or sub-second timer luck. *)
  with_temp_dir @@ fun dir ->
  let store = make_store ~store_mb:1 ~dir () in
  put store ~fault_key:"" ~time:10.0 (String.make 400_000 'a');
  put store ~fault_key:"" ~time:20.0 (String.make 400_000 'b');
  let t = 1_000_000_000.0 in
  List.iter (fun p -> Unix.utimes p t t) (ckpt_files dir);
  let tied = List.sort compare (ckpt_files dir) in
  put store ~fault_key:"" ~time:30.0 (String.make 400_000 'c');
  let survivors = ckpt_files dir in
  match tied with
  | [ first; second ] ->
    Alcotest.(check int) "exactly one eviction" 2 (List.length survivors);
    Alcotest.(check bool) "lexicographically-first of the tie evicted" false
      (List.mem first survivors);
    Alcotest.(check bool) "lexicographically-second of the tie survives" true
      (List.mem second survivors)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 tied files, got %d" (List.length l))

let test_store_mb_guard () =
  (* Malformed and non-positive budgets must warn and fall back to the
     default rather than silently zeroing the store. Observable effect: a
     store created with store_mb:0 still retains small checkpoints (a zero
     budget would evict everything on every put). *)
  with_temp_dir @@ fun dir ->
  let store = make_store ~store_mb:0 ~dir () in
  put store ~fault_key:"" ~time:10.0 "kept";
  (match Checkpoint_store.lookup store ~fault_key:"" ~before:infinity with
  | Some (_, p) -> Alcotest.(check string) "retained under default budget" "kept" p
  | None -> Alcotest.fail "zero budget was not replaced by the default");
  Unix.putenv "AVIS_STORE_MB" "banana";
  (* putenv can't unset; park the variable on the default so later stores
     in this process neither warn nor change behaviour. *)
  Fun.protect
    ~finally:(fun () -> Unix.putenv "AVIS_STORE_MB" "1024")
    (fun () ->
      with_temp_dir @@ fun dir2 ->
      let store2 = make_store ~dir:dir2 () in
      put store2 ~fault_key:"" ~time:10.0 "kept";
      Alcotest.(check bool) "malformed env falls back" true
        (Checkpoint_store.lookup store2 ~fault_key:"" ~before:infinity <> None))

let test_cache_mb_guard () =
  (* Satellite regression: AVIS_CACHE_MB=0 (or cache_mb:0) used to be
     accepted, silently making every capture evict itself. With the guard
     the default budget applies, so a repeated scenario is served from
     memory. *)
  let workload = Workload.quickstart and policy = Policy.apm in
  let make_sim ~scenario =
    Sim.create
      ~plan:(Scenario.to_plan scenario)
      ~link_outages:(Scenario.link_outages scenario)
      (sim_config workload policy)
  in
  let cache =
    Prefix_cache.create ~cache_mb:0 ~workload ~make_sim
      ~checkpoint_times:(List.init 30 (fun i -> float_of_int (i + 1)))
      ()
  in
  let scenario =
    Scenario.of_faults
      [ Scenario.sensor_fault { Sensor.kind = Sensor.Gps; index = 0 } 25.0 ]
  in
  let a = Prefix_cache.execute cache ~scenario in
  let b = Prefix_cache.execute cache ~scenario in
  check_same_outcome "deterministic" a b;
  let s = Prefix_cache.stats cache in
  Alcotest.(check bool) "default budget kept the checkpoints" true
    (s.Prefix_cache.hits >= 1);
  Alcotest.(check int) "no self-evictions" 0 s.Prefix_cache.evictions

(* ------------------------------------------------------------------ *)
(* Prefix cache over a shared store                                     *)
(* ------------------------------------------------------------------ *)

let quickstart_cache ~store_dir =
  let workload = Workload.quickstart and policy = Policy.apm in
  let make_sim ~scenario =
    Sim.create
      ~plan:(Scenario.to_plan scenario)
      ~link_outages:(Scenario.link_outages scenario)
      (sim_config workload policy)
  in
  ( Prefix_cache.create ~store_dir ~workload ~make_sim
      ~checkpoint_times:(List.init 30 (fun i -> float_of_int (i + 1)))
      (),
    make_sim,
    workload )

let store_scenarios () =
  [
    Scenario.empty;
    Scenario.of_faults
      [
        Scenario.sensor_fault { Sensor.kind = Sensor.Gps; index = 0 } 25.0;
        Scenario.sensor_fault { Sensor.kind = Sensor.Gps; index = 1 } 25.0;
      ];
    Scenario.of_faults
      [ Scenario.sensor_fault { Sensor.kind = Sensor.Barometer; index = 0 } 12.5 ];
  ]

let check_cache_against_cold ~msg cache make_sim workload =
  List.iter
    (fun scenario ->
      let served = Prefix_cache.execute cache ~scenario in
      let sim = make_sim ~scenario in
      let passed = Workload.execute workload sim in
      let cold = Sim.outcome sim ~workload_passed:passed in
      check_same_outcome msg cold served)
    (store_scenarios ())

let test_store_shared_across_instances () =
  with_temp_dir @@ fun store_dir ->
  let cache1, make_sim, workload = quickstart_cache ~store_dir in
  check_cache_against_cold ~msg:"first instance = cold" cache1 make_sim workload;
  let s1 = Prefix_cache.stats cache1 in
  Alcotest.(check bool) "first instance wrote checkpoints" true
    (s1.Prefix_cache.store_bytes > 0);
  (* A fresh instance — empty memory, same dir — is the warm-process path:
     everything it restores comes off disk. *)
  let cache2, make_sim, workload = quickstart_cache ~store_dir in
  check_cache_against_cold ~msg:"second instance = cold" cache2 make_sim
    workload;
  let s2 = Prefix_cache.stats cache2 in
  Alcotest.(check bool) "second instance served from the store" true
    (s2.Prefix_cache.store_hits > 0);
  Alcotest.(check bool) "second instance skipped simulated time" true
    (s2.Prefix_cache.saved_sim_s > 0.0)

let test_store_vandalised_dir_still_identical () =
  with_temp_dir @@ fun store_dir ->
  let cache1, make_sim1, workload1 = quickstart_cache ~store_dir in
  check_cache_against_cold ~msg:"populate" cache1 make_sim1 workload1;
  (* Truncate every checkpoint: the next instance must detect each one,
     count misses, and run cold with bit-identical outcomes. *)
  List.iter (fun p -> truncate_file ~len:40 p) (ckpt_files store_dir);
  let cache2, make_sim, workload = quickstart_cache ~store_dir in
  check_cache_against_cold ~msg:"vandalised store = cold" cache2 make_sim
    workload;
  let s = Prefix_cache.stats cache2 in
  Alcotest.(check int) "nothing served from disk" 0 s.Prefix_cache.store_hits;
  Alcotest.(check bool) "misses counted" true (s.Prefix_cache.store_misses > 0)

let () =
  Alcotest.run "avis_store"
    [
      ( "codec",
        [
          Alcotest.test_case "calm flight round-trips" `Quick test_roundtrip_calm;
          Alcotest.test_case "windy flight round-trips" `Quick
            test_roundtrip_windy;
          Alcotest.test_case "mid-fault snapshot round-trips" `Quick
            test_roundtrip_mid_fault;
          Alcotest.test_case "auto-box/px4 round-trips" `Slow
            test_roundtrip_auto_box_px4;
          QCheck_alcotest.to_alcotest ~long:false qcheck_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick
            test_of_bytes_rejects_garbage;
        ] );
      ( "hostile bytes",
        [
          QCheck_alcotest.to_alcotest ~long:false qcheck_fuzz_truncated;
          QCheck_alcotest.to_alcotest ~long:false qcheck_fuzz_bitflip;
          QCheck_alcotest.to_alcotest ~long:false qcheck_fuzz_random;
        ] );
      ( "store",
        [
          Alcotest.test_case "put/lookup round-trip" `Quick test_store_put_lookup;
          Alcotest.test_case "put is idempotent and lazy" `Quick
            test_store_put_is_idempotent_and_lazy;
          Alcotest.test_case "corruption is a counted miss" `Quick
            test_store_corruption_is_a_miss;
          Alcotest.test_case "corrupt newest falls back to older" `Quick
            test_store_corrupt_newest_falls_back_to_older;
          Alcotest.test_case "stale fingerprint invisible" `Quick
            test_store_stale_fingerprint_invisible;
          Alcotest.test_case "eviction keeps bytes bounded" `Quick
            test_store_eviction_bounded;
          Alcotest.test_case "mtime-tie eviction is path-deterministic" `Quick
            test_store_eviction_mtime_tiebreak;
          Alcotest.test_case "AVIS_STORE_MB guard" `Quick test_store_mb_guard;
          Alcotest.test_case "AVIS_CACHE_MB guard" `Slow test_cache_mb_guard;
        ] );
      ( "shared store",
        [
          Alcotest.test_case "fresh instance serves from disk" `Slow
            test_store_shared_across_instances;
          Alcotest.test_case "vandalised store still identical" `Slow
            test_store_vandalised_dir_still_identical;
        ] );
    ]
