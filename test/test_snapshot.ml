(* Snapshot/fork correctness: a snapshot is a deep copy (running the
   original afterwards does not disturb it), a restore is an independent
   bit-identical fork, and the prefix cache built on top is
   outcome-transparent — every cached result equals the cold one, so
   campaigns produce identical results with caching on or off. *)

open Avis_sensors
open Avis_firmware
open Avis_sitl
open Avis_core

let fail_kind ?(n = 2) kind at =
  List.init n (fun index -> { Avis_hinj.Hinj.sensor = { Sensor.kind; index }; at })

let sim_config ?(seed = 42) workload policy =
  let base = Sim.default_config policy in
  {
    base with
    Sim.seed;
    max_duration = workload.Workload.nominal_duration +. 60.0;
    environment = workload.Workload.environment ();
  }

let cold_run ?seed ?(plan = []) workload policy =
  let sim = Sim.create ~plan (sim_config ?seed workload policy) in
  let passed = Workload.execute workload sim in
  Sim.outcome sim ~workload_passed:passed

(* Everything observable about a run. Traces are compared sample by sample
   (position, acceleration, mode, timestamps), so "equal" here means
   bit-identical, not merely same verdict. *)
let fingerprint (o : Sim.outcome) =
  ( Trace.samples o.Sim.trace,
    o.Sim.crash,
    o.Sim.fence_breached,
    o.Sim.workload_passed,
    o.Sim.transitions,
    o.Sim.triggered_bugs,
    o.Sim.duration,
    o.Sim.sensor_reads )

let check_same_outcome msg a b =
  Alcotest.(check bool) msg true (fingerprint a = fingerprint b)

let test_same_seed_same_outcome () =
  let plan = fail_kind Sensor.Gps 20.0 in
  let a = cold_run ~plan Workload.quickstart Policy.apm in
  let b = cold_run ~plan Workload.quickstart Policy.apm in
  check_same_outcome "identical replays" a b;
  Alcotest.(check bool) "trace is non-trivial" true
    (Array.length (Trace.samples a.Sim.trace) > 10)

(* Pause a clean run mid-flight, snapshot, substitute a fault plan on
   restore, and finish: the outcome must be bit-identical to simulating the
   faulty run from scratch. *)
let restore_and_finish ~plan ~(snap : Sim.snapshot)
    ~(stepper : Workload.Stepper.snapshot) =
  let sim = Sim.restore ~plan snap in
  let st = Workload.Stepper.restore stepper in
  let passed =
    match Workload.Stepper.run st sim ~until:infinity with
    | Workload.Stepper.Done p -> p
    | Workload.Stepper.Running -> false
  in
  Sim.outcome sim ~workload_passed:passed

let paused_clean_run workload policy ~until =
  let sim = Sim.create ~plan:[] (sim_config workload policy) in
  let st = Workload.Stepper.create workload in
  (match Workload.Stepper.run st sim ~until with
  | Workload.Stepper.Running -> ()
  | Workload.Stepper.Done _ -> Alcotest.fail "clean run finished before pause");
  (sim, st)

let test_restore_bit_identical () =
  let workload = Workload.quickstart and policy = Policy.apm in
  let plan = fail_kind Sensor.Gps 20.0 in
  let cold = cold_run ~plan workload policy in
  let sim, st = paused_clean_run workload policy ~until:15.0 in
  Alcotest.(check bool) "paused strictly before 15 s" true (Sim.time sim < 15.0);
  let snap = Sim.snapshot sim in
  let stepper = Workload.Stepper.snapshot st in
  let warm = restore_and_finish ~plan ~snap ~stepper in
  check_same_outcome "restored suffix = cold run" cold warm

let test_snapshot_is_deep () =
  let workload = Workload.quickstart and policy = Policy.apm in
  let plan = fail_kind Sensor.Gyroscope 20.0 in
  let cold = cold_run ~plan workload policy in
  let sim, st = paused_clean_run workload policy ~until:10.0 in
  let snap = Sim.snapshot sim in
  let stepper = Workload.Stepper.snapshot st in
  (* Keep running the original to completion: a shallow snapshot would be
     corrupted by the shared mutable state advancing underneath it. *)
  (match Workload.Stepper.run st sim ~until:infinity with
  | Workload.Stepper.Done passed ->
    Alcotest.(check bool) "clean original still passes" true passed
  | Workload.Stepper.Running -> Alcotest.fail "clean run did not finish");
  let warm1 = restore_and_finish ~plan ~snap ~stepper in
  check_same_outcome "snapshot survives the original running on" cold warm1;
  (* And one snapshot restores any number of times. *)
  let warm2 = restore_and_finish ~plan ~snap ~stepper in
  check_same_outcome "second restore of the same snapshot" cold warm2

let scen_kind ?(n = 2) kind at =
  Scenario.of_faults
    (List.init n (fun index -> Scenario.sensor_fault { Sensor.kind; index } at))

let test_prefix_cache_transparent () =
  let workload = Workload.auto_box and policy = Policy.apm in
  let make_sim ~scenario =
    Sim.create
      ~plan:(Scenario.to_plan scenario)
      ~link_outages:(Scenario.link_outages scenario)
      (sim_config workload policy)
  in
  let checkpoint_times = List.init 40 (fun i -> 2.0 *. float_of_int (i + 1)) in
  let cache = Prefix_cache.create ~workload ~make_sim ~checkpoint_times () in
  Alcotest.(check bool) "cacheable config" false (Prefix_cache.bypassing cache);
  let scenarios =
    [
      Scenario.empty;
      scen_kind Sensor.Gps 25.0;
      scen_kind Sensor.Compass 40.0;
      scen_kind ~n:1 Sensor.Barometer 12.5;
      (* A scheduled link outage forks bit-identically too... *)
      Scenario.of_faults [ Scenario.link_loss ~at:25.0 ~duration:10.0 ];
      (* ...including stacked on a sensor fault. *)
      Scenario.of_faults
        [
          Scenario.sensor_fault { Sensor.kind = Sensor.Barometer; index = 0 } 12.5;
          Scenario.link_loss ~at:30.0 ~duration:8.0;
        ];
      (* Earlier than every checkpoint: must fall back to a cold run. *)
      scen_kind ~n:1 Sensor.Gps 0.5;
    ]
  in
  List.iter
    (fun scenario ->
      let cached = Prefix_cache.execute cache ~scenario in
      let sim = make_sim ~scenario in
      let passed = Workload.execute workload sim in
      let cold = Sim.outcome sim ~workload_passed:passed in
      check_same_outcome "cached = cold" cold cached)
    scenarios;
  let stats = Prefix_cache.stats cache in
  Alcotest.(check bool) "served hits" true (stats.Prefix_cache.hits >= 4);
  Alcotest.(check int) "early fault misses" 1 stats.Prefix_cache.misses;
  Alcotest.(check bool) "skipped simulated time" true
    (stats.Prefix_cache.saved_sim_s > 0.0)

(* Satellite regression: configurations whose runs carry state the cache
   key cannot encode — sensor degradations, probabilistic link faults —
   must be refused outright, every execution a cold run counted as a
   miss, never a served hit that could silently diverge. *)
let test_prefix_cache_bypasses_unencodable () =
  let workload = Workload.quickstart and policy = Policy.apm in
  let check_bypassed name make_sim =
    let cache =
      Prefix_cache.create ~workload ~make_sim
        ~checkpoint_times:(List.init 30 (fun i -> float_of_int (i + 1)))
        ()
    in
    Alcotest.(check bool) (name ^ " bypassing") true
      (Prefix_cache.bypassing cache);
    let scenario = scen_kind Sensor.Gps 25.0 in
    let a = Prefix_cache.execute cache ~scenario in
    let b = Prefix_cache.execute cache ~scenario in
    check_same_outcome (name ^ " deterministic cold runs") a b;
    let stats = Prefix_cache.stats cache in
    Alcotest.(check int) (name ^ " no hits") 0 stats.Prefix_cache.hits;
    Alcotest.(check int) (name ^ " all misses") 2 stats.Prefix_cache.misses
  in
  check_bypassed "degradations" (fun ~scenario ->
      Sim.create
        ~plan:(Scenario.to_plan scenario)
        ~link_outages:(Scenario.link_outages scenario)
        ~degradations:
          [
            {
              Avis_hinj.Hinj.target = { Sensor.kind = Sensor.Barometer; index = 0 };
              from_time = 10.0;
              kind = Avis_hinj.Hinj.Constant_bias 0.5;
            };
          ]
        (sim_config workload policy));
  check_bypassed "probabilistic link" (fun ~scenario ->
      Sim.create
        ~plan:(Scenario.to_plan scenario)
        ~link_outages:(Scenario.link_outages scenario)
        {
          (sim_config workload policy) with
          Sim.link_faults =
            { Avis_mavlink.Link.no_faults with Avis_mavlink.Link.drop = 0.05 };
        })

(* Satellite regression: the byte budget is a hard ceiling. With a tiny
   budget the cache must evict checkpoints, yet the accounted resident
   bytes may never exceed the budget and every outcome must still equal
   the cold run — eviction costs wall-clock, never correctness. *)
let test_prefix_cache_eviction_bounded () =
  let workload = Workload.quickstart and policy = Policy.apm in
  let make_sim ~scenario =
    Sim.create
      ~plan:(Scenario.to_plan scenario)
      ~link_outages:(Scenario.link_outages scenario)
      (sim_config workload policy)
  in
  let budget_mb = 1 in
  let cache =
    Prefix_cache.create ~cache_mb:budget_mb ~workload ~make_sim
      ~checkpoint_times:(List.init 30 (fun i -> float_of_int (i + 1)))
      ()
  in
  let budget_bytes = budget_mb * 1024 * 1024 in
  let check_resident () =
    let s = Prefix_cache.stats cache in
    Alcotest.(check bool) "resident within budget" true
      (s.Prefix_cache.resident_bytes <= budget_bytes
      && s.Prefix_cache.resident_bytes >= 0)
  in
  check_resident ();
  let scenarios =
    [
      Scenario.empty;
      scen_kind Sensor.Gps 25.0;
      scen_kind Sensor.Compass 40.0;
      scen_kind ~n:1 Sensor.Barometer 12.5;
      (* Repeat: either a hit or a re-simulated cold run post-eviction. *)
      scen_kind Sensor.Gps 25.0;
    ]
  in
  List.iter
    (fun scenario ->
      let cached = Prefix_cache.execute cache ~scenario in
      check_resident ();
      let sim = make_sim ~scenario in
      let passed = Workload.execute workload sim in
      let cold = Sim.outcome sim ~workload_passed:passed in
      check_same_outcome "evicting cache = cold" cold cached)
    scenarios;
  let s = Prefix_cache.stats cache in
  Alcotest.(check bool) "budget forced evictions" true
    (s.Prefix_cache.evictions > 0)

let test_campaign_cache_transparent () =
  let base = Campaign.default_config Policy.apm Workload.auto_box in
  let run cached =
    Campaign.run
      { base with Campaign.budget_s = 200.0; prefix_cache = cached }
      ~strategy:(fun ctx -> Sabre.make ctx)
  in
  let off = run false in
  let on = run true in
  Alcotest.(check int) "same simulations" off.Campaign.simulations
    on.Campaign.simulations;
  Alcotest.(check int) "same findings" (Campaign.unsafe_count off)
    (Campaign.unsafe_count on);
  Alcotest.(check (float 1e-9)) "same budget spent" off.Campaign.wall_clock_spent_s
    on.Campaign.wall_clock_spent_s;
  Alcotest.(check bool) "same finding indices" true
    (List.map
       (fun f -> f.Campaign.simulation_index)
       off.Campaign.findings
    = List.map (fun f -> f.Campaign.simulation_index) on.Campaign.findings)

(* A campaign replayed with a shared cache forks every scenario from its
   last checkpoint; the result must still be identical to the cold run. *)
let test_campaign_replay_identical () =
  let base = Campaign.default_config Policy.apm Workload.auto_box in
  let config =
    { base with Campaign.budget_s = 200.0; prefix_cache = true }
  in
  let strategy ctx = Sabre.make ctx in
  let cold =
    Campaign.run
      { config with Campaign.prefix_cache = false }
      ~strategy
  in
  let cache = Campaign.make_cache config in
  let first = Campaign.run ~cache config ~strategy in
  let replay = Campaign.run ~cache config ~strategy in
  let check msg (a : Campaign.result) (b : Campaign.result) =
    Alcotest.(check bool)
      msg true
      (a.Campaign.simulations = b.Campaign.simulations
      && Campaign.unsafe_count a = Campaign.unsafe_count b
      && a.Campaign.wall_clock_spent_s = b.Campaign.wall_clock_spent_s
      && List.map (fun f -> f.Campaign.simulation_index) a.Campaign.findings
         = List.map (fun f -> f.Campaign.simulation_index) b.Campaign.findings)
  in
  check "shared-cache first run = cold" cold first;
  check "shared-cache replay = cold" cold replay;
  (* The replay really was served from snapshots: every scenario hit. *)
  let s0 =
    match first.Campaign.cache_stats with
    | Some s -> s
    | None -> Alcotest.fail "cache disabled"
  in
  let s1 =
    match replay.Campaign.cache_stats with
    | Some s -> s
    | None -> Alcotest.fail "cache disabled"
  in
  Alcotest.(check int) "replay added no misses" s0.Prefix_cache.misses
    s1.Prefix_cache.misses

let () =
  Alcotest.run "avis_snapshot"
    [
      ( "snapshot",
        [
          Alcotest.test_case "same seed, same outcome" `Quick
            test_same_seed_same_outcome;
          Alcotest.test_case "restore = cold run" `Quick test_restore_bit_identical;
          Alcotest.test_case "snapshots are deep" `Quick test_snapshot_is_deep;
        ] );
      ( "prefix cache",
        [
          Alcotest.test_case "cache transparent" `Slow test_prefix_cache_transparent;
          Alcotest.test_case "cache bypasses unencodable configs" `Slow
            test_prefix_cache_bypasses_unencodable;
          Alcotest.test_case "eviction keeps bytes bounded" `Slow
            test_prefix_cache_eviction_bounded;
          Alcotest.test_case "campaign on/off identical" `Slow
            test_campaign_cache_transparent;
          Alcotest.test_case "campaign replay identical" `Slow
            test_campaign_replay_identical;
        ] );
    ]
