(* Snapshot/fork correctness: a snapshot is a deep copy (running the
   original afterwards does not disturb it), a restore is an independent
   bit-identical fork, and the prefix cache built on top is
   outcome-transparent — every cached result equals the cold one, so
   campaigns produce identical results with caching on or off. *)

open Avis_sensors
open Avis_firmware
open Avis_sitl
open Avis_core

let fail_kind ?(n = 2) kind at =
  List.init n (fun index -> { Avis_hinj.Hinj.sensor = { Sensor.kind; index }; at })

let sim_config ?(seed = 42) workload policy =
  let base = Sim.default_config policy in
  {
    base with
    Sim.seed;
    max_duration = workload.Workload.nominal_duration +. 60.0;
    environment = workload.Workload.environment ();
  }

let cold_run ?seed ?(plan = []) workload policy =
  let sim = Sim.create ~plan (sim_config ?seed workload policy) in
  let passed = Workload.execute workload sim in
  Sim.outcome sim ~workload_passed:passed

(* Everything observable about a run. Traces are compared sample by sample
   (position, acceleration, mode, timestamps), so "equal" here means
   bit-identical, not merely same verdict. *)
let fingerprint (o : Sim.outcome) =
  ( Trace.samples o.Sim.trace,
    o.Sim.crash,
    o.Sim.fence_breached,
    o.Sim.workload_passed,
    o.Sim.transitions,
    o.Sim.triggered_bugs,
    o.Sim.duration,
    o.Sim.sensor_reads )

let check_same_outcome msg a b =
  Alcotest.(check bool) msg true (fingerprint a = fingerprint b)

let test_same_seed_same_outcome () =
  let plan = fail_kind Sensor.Gps 20.0 in
  let a = cold_run ~plan Workload.quickstart Policy.apm in
  let b = cold_run ~plan Workload.quickstart Policy.apm in
  check_same_outcome "identical replays" a b;
  Alcotest.(check bool) "trace is non-trivial" true
    (Array.length (Trace.samples a.Sim.trace) > 10)

(* Pause a clean run mid-flight, snapshot, substitute a fault plan on
   restore, and finish: the outcome must be bit-identical to simulating the
   faulty run from scratch. *)
let restore_and_finish ~plan ~(snap : Sim.snapshot)
    ~(stepper : Workload.Stepper.snapshot) =
  let sim = Sim.restore ~plan snap in
  let st = Workload.Stepper.restore stepper in
  let passed =
    match Workload.Stepper.run st sim ~until:infinity with
    | Workload.Stepper.Done p -> p
    | Workload.Stepper.Running -> false
  in
  Sim.outcome sim ~workload_passed:passed

let paused_clean_run workload policy ~until =
  let sim = Sim.create ~plan:[] (sim_config workload policy) in
  let st = Workload.Stepper.create workload in
  (match Workload.Stepper.run st sim ~until with
  | Workload.Stepper.Running -> ()
  | Workload.Stepper.Done _ -> Alcotest.fail "clean run finished before pause");
  (sim, st)

let test_restore_bit_identical () =
  let workload = Workload.quickstart and policy = Policy.apm in
  let plan = fail_kind Sensor.Gps 20.0 in
  let cold = cold_run ~plan workload policy in
  let sim, st = paused_clean_run workload policy ~until:15.0 in
  Alcotest.(check bool) "paused strictly before 15 s" true (Sim.time sim < 15.0);
  let snap = Sim.snapshot sim in
  let stepper = Workload.Stepper.snapshot st in
  let warm = restore_and_finish ~plan ~snap ~stepper in
  check_same_outcome "restored suffix = cold run" cold warm

let test_snapshot_is_deep () =
  let workload = Workload.quickstart and policy = Policy.apm in
  let plan = fail_kind Sensor.Gyroscope 20.0 in
  let cold = cold_run ~plan workload policy in
  let sim, st = paused_clean_run workload policy ~until:10.0 in
  let snap = Sim.snapshot sim in
  let stepper = Workload.Stepper.snapshot st in
  (* Keep running the original to completion: a shallow snapshot would be
     corrupted by the shared mutable state advancing underneath it. *)
  (match Workload.Stepper.run st sim ~until:infinity with
  | Workload.Stepper.Done passed ->
    Alcotest.(check bool) "clean original still passes" true passed
  | Workload.Stepper.Running -> Alcotest.fail "clean run did not finish");
  let warm1 = restore_and_finish ~plan ~snap ~stepper in
  check_same_outcome "snapshot survives the original running on" cold warm1;
  (* And one snapshot restores any number of times. *)
  let warm2 = restore_and_finish ~plan ~snap ~stepper in
  check_same_outcome "second restore of the same snapshot" cold warm2

let test_prefix_cache_transparent () =
  let workload = Workload.auto_box and policy = Policy.apm in
  let make_sim ~plan = Sim.create ~plan (sim_config workload policy) in
  let checkpoint_times = List.init 40 (fun i -> 2.0 *. float_of_int (i + 1)) in
  let cache = Prefix_cache.create ~workload ~make_sim ~checkpoint_times in
  let plans =
    [
      [];
      fail_kind Sensor.Gps 25.0;
      fail_kind Sensor.Compass 40.0;
      fail_kind ~n:1 Sensor.Barometer 12.5;
      (* Earlier than every checkpoint: must fall back to a cold run. *)
      fail_kind ~n:1 Sensor.Gps 0.5;
    ]
  in
  List.iter
    (fun plan ->
      let cached = Prefix_cache.execute cache ~plan in
      let sim = make_sim ~plan in
      let passed = Workload.execute workload sim in
      let cold = Sim.outcome sim ~workload_passed:passed in
      check_same_outcome "cached = cold" cold cached)
    plans;
  let stats = Prefix_cache.stats cache in
  Alcotest.(check bool) "served hits" true (stats.Prefix_cache.hits >= 3);
  Alcotest.(check int) "early fault misses" 1 stats.Prefix_cache.misses;
  Alcotest.(check bool) "skipped simulated time" true
    (stats.Prefix_cache.saved_sim_s > 0.0)

let test_campaign_cache_transparent () =
  let base = Campaign.default_config Policy.apm Workload.auto_box in
  let run cached =
    Campaign.run
      { base with Campaign.budget_s = 200.0; prefix_cache = cached }
      ~strategy:(fun ctx -> Sabre.make ctx)
  in
  let off = run false in
  let on = run true in
  Alcotest.(check int) "same simulations" off.Campaign.simulations
    on.Campaign.simulations;
  Alcotest.(check int) "same findings" (Campaign.unsafe_count off)
    (Campaign.unsafe_count on);
  Alcotest.(check (float 1e-9)) "same budget spent" off.Campaign.wall_clock_spent_s
    on.Campaign.wall_clock_spent_s;
  Alcotest.(check bool) "same finding indices" true
    (List.map
       (fun f -> f.Campaign.simulation_index)
       off.Campaign.findings
    = List.map (fun f -> f.Campaign.simulation_index) on.Campaign.findings)

(* A campaign replayed with a shared cache forks every scenario from its
   last checkpoint; the result must still be identical to the cold run. *)
let test_campaign_replay_identical () =
  let base = Campaign.default_config Policy.apm Workload.auto_box in
  let config =
    { base with Campaign.budget_s = 200.0; prefix_cache = true }
  in
  let strategy ctx = Sabre.make ctx in
  let cold =
    Campaign.run
      { config with Campaign.prefix_cache = false }
      ~strategy
  in
  let cache = Campaign.make_cache config in
  let first = Campaign.run ~cache config ~strategy in
  let replay = Campaign.run ~cache config ~strategy in
  let check msg (a : Campaign.result) (b : Campaign.result) =
    Alcotest.(check bool)
      msg true
      (a.Campaign.simulations = b.Campaign.simulations
      && Campaign.unsafe_count a = Campaign.unsafe_count b
      && a.Campaign.wall_clock_spent_s = b.Campaign.wall_clock_spent_s
      && List.map (fun f -> f.Campaign.simulation_index) a.Campaign.findings
         = List.map (fun f -> f.Campaign.simulation_index) b.Campaign.findings)
  in
  check "shared-cache first run = cold" cold first;
  check "shared-cache replay = cold" cold replay;
  (* The replay really was served from snapshots: every scenario hit. *)
  let s0 =
    match first.Campaign.cache_stats with
    | Some s -> s
    | None -> Alcotest.fail "cache disabled"
  in
  let s1 =
    match replay.Campaign.cache_stats with
    | Some s -> s
    | None -> Alcotest.fail "cache disabled"
  in
  Alcotest.(check int) "replay added no misses" s0.Prefix_cache.misses
    s1.Prefix_cache.misses

let () =
  Alcotest.run "avis_snapshot"
    [
      ( "snapshot",
        [
          Alcotest.test_case "same seed, same outcome" `Quick
            test_same_seed_same_outcome;
          Alcotest.test_case "restore = cold run" `Quick test_restore_bit_identical;
          Alcotest.test_case "snapshots are deep" `Quick test_snapshot_is_deep;
        ] );
      ( "prefix cache",
        [
          Alcotest.test_case "cache transparent" `Slow test_prefix_cache_transparent;
          Alcotest.test_case "campaign on/off identical" `Slow
            test_campaign_cache_transparent;
          Alcotest.test_case "campaign replay identical" `Slow
            test_campaign_replay_identical;
        ] );
    ]
